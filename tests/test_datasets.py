"""Unit tests for the synthetic dataset generators and stream I/O."""

import itertools

import pytest

from repro.datasets import (
    LSBENCH_SCHEMA,
    LSBenchGenerator,
    NetflowGenerator,
    NYTGenerator,
    PROTOCOLS,
    WeightedChooser,
    ZipfSampler,
    chunk_events,
    count_stream_events,
    interleave_at,
    read_stream,
    split_stream,
    write_stream,
)
from repro.graph import EdgeEvent
import random


class TestZipfSampler:
    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(5, s=-1.0)

    def test_ranks_in_range(self):
        sampler = ZipfSampler(10, 1.2)
        rng = random.Random(1)
        assert all(0 <= sampler.sample(rng) < 10 for _ in range(200))

    def test_skew_towards_low_ranks(self):
        sampler = ZipfSampler(100, 1.2)
        rng = random.Random(2)
        draws = [sampler.sample(rng) for _ in range(3000)]
        top = sum(1 for d in draws if d < 10)
        assert top > len(draws) * 0.4

    def test_exclusion(self):
        sampler = ZipfSampler(2, 1.0)
        rng = random.Random(3)
        assert all(sampler.sample_excluding(rng, 0) == 1 for _ in range(20))

    def test_exclusion_needs_two(self):
        with pytest.raises(ValueError):
            ZipfSampler(1).sample_excluding(random.Random(0), 0)


class TestWeightedChooser:
    def test_weights_respected(self):
        chooser = WeightedChooser([("hot", 0.9), ("cold", 0.1)])
        rng = random.Random(4)
        draws = [chooser.choose(rng) for _ in range(2000)]
        assert draws.count("hot") > 1500

    def test_validates(self):
        with pytest.raises(ValueError):
            WeightedChooser([])
        with pytest.raises(ValueError):
            WeightedChooser([("a", -1.0)])
        with pytest.raises(ValueError):
            WeightedChooser([("a", 0.0)])

    def test_weight_map_sums_to_one(self):
        chooser = WeightedChooser([("a", 2.0), ("b", 6.0)])
        weights = chooser.weight_map()
        assert sum(weights.values()) == pytest.approx(1.0)
        assert weights["b"] == pytest.approx(0.75)


class TestNetflow:
    def test_deterministic_for_seed(self):
        a = NetflowGenerator(num_events=200, seed=5).generate()
        b = NetflowGenerator(num_events=200, seed=5).generate()
        assert a == b
        c = NetflowGenerator(num_events=200, seed=6).generate()
        assert a != c

    def test_event_shape(self):
        events = NetflowGenerator(num_events=100).generate()
        assert len(events) == 100
        for event in events:
            assert event.etype in PROTOCOLS
            assert event.src_type == event.dst_type == "ip"
            assert event.src != event.dst

    def test_timestamps_increase(self):
        events = NetflowGenerator(num_events=300).generate()
        stamps = [e.timestamp for e in events]
        assert stamps == sorted(stamps)

    def test_protocol_skew_matches_fig6b_order(self):
        events = NetflowGenerator(num_events=8000, seed=1).generate()
        counts = {}
        for event in events:
            counts[event.etype] = counts.get(event.etype, 0) + 1
        assert counts["TCP"] > counts["UDP"] > counts["ICMP"]
        assert counts["ICMP"] > counts.get("GRE", 0)
        assert counts.get("AH", 0) < counts["TCP"] / 20

    def test_schema(self):
        gen = NetflowGenerator(num_events=1)
        triples = gen.schema_triples()
        assert len(triples) == 7
        assert all(t.src_type == "ip" and t.dst_type == "ip" for t in triples)
        assert set(gen.etypes()) == set(PROTOCOLS)

    def test_generate_limit(self):
        events = NetflowGenerator(num_events=100).generate(limit=7)
        assert len(events) == 7

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NetflowGenerator(num_events=10, num_hosts=1)
        with pytest.raises(ValueError):
            NetflowGenerator(num_events=10, profile_min=3, profile_max=2)
        with pytest.raises(TypeError):
            NetflowGenerator(NetflowGenerator(num_events=1).config, num_events=2)

    def test_host_profiles_are_deterministic_and_bounded(self):
        gen = NetflowGenerator(num_events=1, seed=4)
        other = NetflowGenerator(num_events=1, seed=4)
        for host in range(50):
            profile = gen.profile(host)
            assert 2 <= len(profile) <= 4
            assert set(profile) <= set(PROTOCOLS)
            assert profile == other.profile(host)
        assert gen.profile(0) != NetflowGenerator(num_events=1, seed=5).profile(0) or (
            gen.profile(1) != NetflowGenerator(num_events=1, seed=5).profile(1)
        )

    def test_edges_respect_source_profiles(self):
        gen = NetflowGenerator(num_events=2000, seed=6)
        for event in gen.generate():
            host = int(str(event.src)[2:])
            assert event.etype in gen.profile(host)

    def test_affinity_can_be_disabled(self):
        gen = NetflowGenerator(num_events=1, seed=7, profile_min=0, profile_max=0)
        assert set(gen.profile(0)) == set(PROTOCOLS)

    def test_affinity_creates_path_skew(self):
        """The point of profiles: some 2-edge protocol chains must be far
        rarer than the product of their edge frequencies predicts."""
        from repro.stats import SelectivityEstimator

        gen = NetflowGenerator(num_events=8000, num_hosts=1000, seed=13)
        estimator = SelectivityEstimator()
        estimator.observe_events(gen.events())
        ratios = []
        for signature, _ in estimator.path_counter.distribution():
            (d1, t1), (d2, t2) = signature
            independent = (
                2 * estimator.edge_selectivity(t1) * estimator.edge_selectivity(t2)
                if t1 != t2
                else estimator.edge_selectivity(t1) ** 2
            )
            if independent > 0:
                ratios.append(estimator.path_selectivity(signature) / independent)
        # under independence all ratios would sit near a common structural
        # constant; affinity must spread them over orders of magnitude
        assert max(ratios) / max(min(ratios), 1e-12) > 50


class TestLSBench:
    def test_schema_has_45_types(self):
        assert len(LSBENCH_SCHEMA) == 45
        assert len({row[0] for row in LSBENCH_SCHEMA}) == 45

    def test_two_phase_distribution_shift(self):
        events = LSBenchGenerator(num_events=6000, seed=2).generate()
        half = len(events) // 2
        first = {e.etype for e in events[:half]}
        second_counts = {}
        for event in events[half:]:
            second_counts[event.etype] = second_counts.get(event.etype, 0) + 1
        assert "knows" in first
        assert "createsPost" not in first  # phase 1 has no activity stream
        assert second_counts.get("likesPost", 0) > 0
        assert second_counts.get("checksInAt", 0) > 0

    def test_events_conform_to_schema(self):
        valid = {(row[0], row[1], row[2]) for row in LSBENCH_SCHEMA}
        events = LSBenchGenerator(num_events=1500, seed=3).generate()
        for event in events:
            assert (event.etype, event.src_type, event.dst_type) in valid

    def test_vertex_ids_carry_type_prefix(self):
        events = LSBenchGenerator(num_events=500, seed=4).generate()
        for event in events:
            assert str(event.src).startswith(event.src_type)
            assert str(event.dst).startswith(event.dst_type)

    def test_no_self_loops(self):
        events = LSBenchGenerator(num_events=2000, seed=5).generate()
        assert all(e.src != e.dst for e in events)

    def test_deterministic(self):
        a = LSBenchGenerator(num_events=300, seed=9).generate()
        b = LSBenchGenerator(num_events=300, seed=9).generate()
        assert a == b


class TestNYT:
    def test_bipartite_article_to_entity(self):
        events = NYTGenerator(num_events=500, seed=6).generate()
        for event in events:
            assert event.src_type == "article"
            assert event.dst_type in {"person", "geoloc", "topic", "org"}

    def test_mention_frequency_order(self):
        events = NYTGenerator(num_events=6000, seed=7).generate()
        counts = {}
        for event in events:
            counts[event.etype] = counts.get(event.etype, 0) + 1
        assert (
            counts["article_mentions_person"]
            > counts["article_mentions_geoloc"]
            > counts["article_mentions_org"]
        )

    def test_articles_do_not_repeat_mentions(self):
        events = NYTGenerator(num_events=2000, seed=8).generate()
        seen = set()
        for event in events:
            key = (event.src, event.dst)
            assert key not in seen
            seen.add(key)

    def test_exact_event_count(self):
        assert len(NYTGenerator(num_events=123, seed=1).generate()) == 123


class TestStreamIO:
    def test_round_trip(self, tmp_path):
        events = NetflowGenerator(num_events=50, seed=11).generate()
        path = tmp_path / "stream.tsv"
        assert write_stream(path, events) == 50
        back = list(read_stream(path))
        assert back == events

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "stream.tsv"
        path.write_text("# header\n\n1.0\ta\tip\tTCP\tb\tip\n")
        assert len(list(read_stream(path))) == 1

    def test_bad_arity_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1.0\ta\tip\tTCP\n")
        with pytest.raises(Exception, match="fields"):
            list(read_stream(path))

    def test_bad_timestamp_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("soon\ta\tip\tTCP\tb\tip\n")
        with pytest.raises(Exception, match="timestamp"):
            list(read_stream(path))

    def test_chunked_reading_covers_stream(self, tmp_path):
        events = NetflowGenerator(num_events=53, seed=11).generate()
        path = tmp_path / "stream.tsv"
        write_stream(path, events)
        chunks = list(chunk_events(read_stream(path), 10))
        assert [len(chunk) for chunk in chunks] == [10, 10, 10, 10, 10, 3]
        assert list(itertools.chain.from_iterable(chunks)) == events

    def test_count_stream_events(self, tmp_path):
        events = NetflowGenerator(num_events=17, seed=5).generate()
        path = tmp_path / "stream.tsv"
        write_stream(path, events)
        assert count_stream_events(path) == 17

    def test_chunk_events_shares_an_iterator(self):
        events = NetflowGenerator(num_events=10, seed=5).generate()
        iterator = iter(events)
        warmup = list(itertools.islice(iterator, 4))
        chunks = list(chunk_events(iterator, 3))
        assert warmup == events[:4]
        assert [len(c) for c in chunks] == [3, 3]
        assert list(itertools.chain.from_iterable(chunks)) == events[4:]
        with pytest.raises(ValueError):
            list(chunk_events(events, 0))


class TestStreamHelpers:
    def test_split_stream(self):
        events = NetflowGenerator(num_events=100, seed=1).generate()
        warmup, rest = split_stream(events, 0.25)
        assert len(warmup) == 25 and len(rest) == 75
        assert warmup + rest == events

    def test_split_validates(self):
        with pytest.raises(ValueError):
            split_stream([], 1.5)

    def test_interleave_preserves_monotonicity(self):
        background = NetflowGenerator(num_events=60, seed=2).generate()
        planted = [
            EdgeEvent("evil", "victim", "RDP", 0.0, "ip", "ip"),
            EdgeEvent("victim", "c2", "RDP", 0.0, "ip", "ip"),
        ]
        merged = list(interleave_at(background, planted, [10, 30]))
        assert len(merged) == 62
        stamps = [e.timestamp for e in merged]
        assert stamps == sorted(stamps)
        assert sum(1 for e in merged if e.etype == "RDP") == 2

    def test_interleave_validates(self):
        with pytest.raises(ValueError):
            list(interleave_at([], [EdgeEvent("a", "b", "T", 0.0)], []))

    def test_interleave_appends_leftovers(self):
        background = NetflowGenerator(num_events=5, seed=3).generate()
        planted = [EdgeEvent("x", "y", "T", 0.0)]
        merged = list(interleave_at(background, planted, [99]))
        assert merged[-1].etype == "T"
