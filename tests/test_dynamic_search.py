"""Unit tests for DYNAMIC-GRAPH-SEARCH (the eager strategies)."""

import math


from repro.graph import StreamingGraph
from repro.query import QueryGraph
from repro.search import DynamicGraphSearch
from repro.sjtree import build_sj_tree
from repro.stats import SelectivityEstimator

from .util import events_from_tuples, fingerprints


def make_search(rows_for_stats, query, strategy="single", window=math.inf):
    estimator = SelectivityEstimator()
    estimator.observe_events(events_from_tuples(rows_for_stats))
    graph = StreamingGraph(window)
    tree = build_sj_tree(query, estimator, strategy)
    return graph, DynamicGraphSearch(graph, tree, name="Single")


STATS_ROWS = [
    ("a", "b", "T"),
    ("b", "c", "U"),
    ("c", "d", "T"),
    ("d", "e", "U"),
    ("e", "f", "T"),
]


class TestDynamicSearch:
    def test_incremental_match_on_completion_edge(self):
        query = QueryGraph.path(["T", "U"])
        graph, search = make_search(STATS_ROWS, query)
        edge1 = graph.add_edge("x", "y", "T", 1.0)
        assert search.process_edge(edge1) == []
        edge2 = graph.add_edge("y", "z", "U", 2.0)
        results = search.process_edge(edge2)
        assert len(results) == 1
        assert results[0].vertex_map == {0: "x", 1: "y", 2: "z"}
        assert search.matches_emitted == 1

    def test_arrival_order_does_not_matter_for_eager(self):
        query = QueryGraph.path(["T", "U"])
        graph, search = make_search(STATS_ROWS, query)
        edge2 = graph.add_edge("y", "z", "U", 1.0)
        assert search.process_edge(edge2) == []
        edge1 = graph.add_edge("x", "y", "T", 2.0)
        assert len(search.process_edge(edge1)) == 1

    def test_multiple_completions_in_one_edge(self):
        query = QueryGraph.path(["T", "U"])
        graph, search = make_search(STATS_ROWS, query)
        search.process_edge(graph.add_edge("x1", "y", "T", 1.0))
        search.process_edge(graph.add_edge("x2", "y", "T", 2.0))
        results = search.process_edge(graph.add_edge("y", "z", "U", 3.0))
        assert len(results) == 2

    def test_window_expiry_blocks_stale_partners(self):
        query = QueryGraph.path(["T", "U"])
        graph, search = make_search(STATS_ROWS, query, window=10.0)
        search.process_edge(graph.add_edge("x", "y", "T", 0.0))
        results = search.process_edge(graph.add_edge("y", "z", "U", 50.0))
        assert results == []

    def test_partial_count_and_housekeeping(self):
        query = QueryGraph.path(["T", "U"])
        graph, search = make_search(STATS_ROWS, query, window=10.0)
        search.process_edge(graph.add_edge("x", "y", "T", 0.0))
        assert search.partial_match_count() == 1
        graph.add_edge("p", "q", "T", 100.0)  # advances window
        search.housekeeping()
        assert search.partial_match_count() <= 1  # stale T match expired

    def test_path_decomposition_equivalent(self):
        query = QueryGraph.path(["T", "U", "T", "U"])
        stream = [
            ("n0", "n1", "T", 1.0),
            ("n1", "n2", "U", 2.0),
            ("n2", "n3", "T", 3.0),
            ("n3", "n4", "U", 4.0),
        ]
        results = {}
        for strategy in ("single", "path"):
            graph, search = make_search(STATS_ROWS, query, strategy=strategy)
            found = []
            for src, dst, etype, ts in stream:
                found.extend(search.process_edge(graph.add_edge(src, dst, etype, ts)))
            results[strategy] = fingerprints(found)
        assert results["single"] == results["path"] != set()

    def test_profile_phases_populated(self):
        query = QueryGraph.path(["T", "U"])
        graph, search = make_search(STATS_ROWS, query)
        search.process_edge(graph.add_edge("x", "y", "T", 1.0))
        search.process_edge(graph.add_edge("y", "z", "U", 2.0))
        assert search.profile.seconds("iso") > 0.0
        assert search.profile.counters.get("leaf_matches", 0) >= 2
