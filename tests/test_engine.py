"""Unit tests for the ContinuousQueryEngine front-end."""

import math

import pytest

from repro import ContinuousQueryEngine
from repro.errors import QueryError, StrategyError
from repro.graph import EdgeEvent
from repro.query import QueryGraph

from .util import events_from_tuples, fingerprints


def warm_rows():
    rows = [(f"w{i}", f"w{i+1}", "T") for i in range(10)]
    rows += [(f"x{i}", f"x{i+1}", "U") for i in range(4)]
    rows += [("w0", "m0", "T"), ("m0", "m1", "U")]
    return rows


def stream_rows():
    return events_from_tuples(
        [
            ("a", "b", "T", 100.0),
            ("b", "c", "U", 101.0),
            ("c", "d", "T", 102.0),
            ("b", "e", "U", 103.0),
        ]
    )


@pytest.fixture
def engine():
    eng = ContinuousQueryEngine(window=math.inf)
    eng.warmup(events_from_tuples(warm_rows()))
    return eng


class TestRegistration:
    def test_auto_strategy_records_decision(self, engine):
        registered = engine.register(QueryGraph.path(["T", "U"], name="q"))
        assert registered.strategy in ("SingleLazy", "PathLazy")
        assert registered.decision is not None
        assert registered.tree is not None

    def test_explicit_strategies(self, engine):
        for strategy in ("Single", "SingleLazy", "Path", "PathLazy", "VF2", "IncIso"):
            eng = ContinuousQueryEngine()
            eng.warmup(events_from_tuples(warm_rows()))
            registered = eng.register(
                QueryGraph.path(["T", "U"], name="q"), strategy=strategy
            )
            assert registered.strategy == strategy

    def test_unknown_strategy_rejected(self, engine):
        with pytest.raises(StrategyError):
            engine.register(QueryGraph.path(["T"], name="q"), strategy="Magic")

    def test_duplicate_name_rejected(self, engine):
        engine.register(QueryGraph.path(["T"], name="q"))
        with pytest.raises(QueryError, match="already registered"):
            engine.register(QueryGraph.path(["U"], name="q"))

    def test_disconnected_query_rejected(self, engine):
        query = QueryGraph(name="disc")
        query.add_edge(0, 1, "T")
        query.add_edge(2, 3, "U")
        with pytest.raises(QueryError, match="connected"):
            engine.register(query)

    def test_sjtree_strategies_require_warm_stats(self):
        cold = ContinuousQueryEngine()
        with pytest.raises(Exception, match="cold"):
            cold.register(QueryGraph.path(["T"], name="q"), strategy="Single")

    def test_vf2_strategy_works_cold(self):
        cold = ContinuousQueryEngine()
        registered = cold.register(QueryGraph.path(["T"], name="q"), strategy="VF2")
        assert registered.tree is None

    def test_auto_naming(self, engine):
        anonymous = QueryGraph.path(["T"])
        registered = engine.register(anonymous, strategy="VF2")
        assert registered.name == "q0"


class TestProcessing:
    def test_records_carry_context(self, engine):
        engine.register(QueryGraph.path(["T", "U"], name="q"), strategy="SingleLazy")
        records = []
        for event in stream_rows():
            records.extend(engine.process_event(event))
        assert len(records) == 2
        record = records[0]
        assert record.query_name == "q"
        assert record.strategy == "SingleLazy"
        assert record.completed_at == record.match.max_time

    def test_multi_query_fanout(self, engine):
        engine.register(QueryGraph.path(["T", "U"], name="tu"), strategy="SingleLazy")
        engine.register(QueryGraph.path(["U"], name="u"), strategy="Single")
        records = []
        for event in stream_rows():
            records.extend(engine.process_event(event))
        grouped = {}
        for record in records:
            grouped.setdefault(record.query_name, []).append(record)
        assert len(grouped["u"]) == 2
        assert len(grouped["tu"]) == 2

    def test_run_collects_metrics(self, engine):
        engine.register(QueryGraph.path(["T", "U"], name="q"), strategy="Single")
        result = engine.run(stream_rows())
        assert result.edges_processed == 4
        assert result.matches == 2
        assert result.elapsed_seconds >= 0.0
        assert set(result.by_query()) == {"q"}

    def test_run_limit(self, engine):
        engine.register(QueryGraph.path(["T", "U"], name="q"), strategy="Single")
        result = engine.run(stream_rows(), limit=2)
        assert result.edges_processed == 2

    def test_windowed_engine_evicts(self):
        eng = ContinuousQueryEngine(window=5.0, housekeeping_every=1)
        eng.warmup(events_from_tuples(warm_rows()))
        eng.register(QueryGraph.path(["T", "U"], name="q"), strategy="SingleLazy")
        records = []
        records.extend(eng.process_event(EdgeEvent("a", "b", "T", 0.0)))
        records.extend(eng.process_event(EdgeEvent("b", "c", "U", 100.0)))
        assert records == []
        assert eng.graph.num_edges == 1  # the old edge was evicted

    def test_update_statistics_flag(self, engine):
        engine.update_statistics = True
        before = engine.estimator.events_observed
        engine.register(QueryGraph.path(["T"], name="q"), strategy="Single")
        engine.process_event(EdgeEvent("a", "b", "T", 100.0))
        assert engine.estimator.events_observed == before + 1

    def test_describe_smoke(self, engine):
        engine.register(QueryGraph.path(["T", "U"], name="q"))
        for event in stream_rows():
            engine.process_event(event)
        text = engine.describe()
        assert "q:" in text and "matches=" in text

    def test_bad_housekeeping_interval(self):
        with pytest.raises(ValueError):
            ContinuousQueryEngine(housekeeping_every=0)

    def test_bad_partial_sample_interval(self):
        with pytest.raises(ValueError):
            ContinuousQueryEngine(partial_sample_every=0)

    def test_run_skips_partial_sampling_by_default(self, engine):
        # The O(#queries x state) scan is opt-in: without the knob, run()
        # must leave the peak figure untouched even though partial state
        # exists (the T edge of the T-U path is a live partial match).
        engine.register(QueryGraph.path(["T", "U"], name="q"), strategy="Single")
        result = engine.run(stream_rows())
        assert result.peak_partial_matches == 0
        assert engine.partial_match_count() > 0

    def test_run_samples_partials_when_asked(self):
        eng = ContinuousQueryEngine(window=math.inf, partial_sample_every=1)
        eng.warmup(events_from_tuples(warm_rows()))
        eng.register(QueryGraph.path(["T", "U"], name="q"), strategy="Single")
        result = eng.run(stream_rows())
        assert result.peak_partial_matches == eng.partial_match_count()
        assert result.peak_partial_matches > 0


class TestIntrospection:
    def test_route_counts_and_describe(self, engine):
        engine.register(QueryGraph.path(["T", "U"], name="tu"), strategy="Single")
        engine.register(QueryGraph.path(["U"], name="u"), strategy="Single")
        engine.register(
            QueryGraph.path(["T"], name="all"), strategy="PeriodicVF2", period=4
        )
        counts = engine.route_counts()
        assert counts == {"tu": 2, "u": 1, "all": None}
        text = engine.describe()
        assert "routes=2" in text  # tu
        assert "routes=1" in text  # u
        assert "routes=*" in text  # PeriodicVF2 sees every edge

    def test_query_alphabets_export(self, engine):
        engine.register(QueryGraph.path(["T", "U"], name="tu"), strategy="Single")
        engine.register(
            QueryGraph.path(["T"], name="all"), strategy="PeriodicVF2", period=4
        )
        alphabets = engine.query_alphabets()
        assert alphabets["tu"] == frozenset({"T", "U"})
        assert alphabets["all"] is None

    def test_process_events_batch_matches_per_event(self, engine):
        engine.register(QueryGraph.path(["T", "U"], name="q"), strategy="Single")
        batched = engine.process_events(stream_rows())
        loop = ContinuousQueryEngine(window=math.inf)
        loop.warmup(events_from_tuples(warm_rows()))
        loop.register(QueryGraph.path(["T", "U"], name="q"), strategy="Single")
        unbatched = []
        for event in stream_rows():
            unbatched.extend(loop.process_event(event))
        assert fingerprints(batched) == fingerprints(unbatched)
        assert len(batched) == 2


class TestCrossStrategyAgreement:
    def test_all_strategies_agree_on_stream(self, engine):
        outcomes = {}
        for strategy in ("Single", "SingleLazy", "Path", "PathLazy", "VF2", "IncIso"):
            eng = ContinuousQueryEngine()
            eng.warmup(events_from_tuples(warm_rows()))
            eng.register(QueryGraph.path(["T", "U"], name="q"), strategy=strategy)
            records = []
            for event in stream_rows():
                records.extend(eng.process_event(event))
            outcomes[strategy] = fingerprints(records)
        baseline = outcomes.pop("VF2")
        assert baseline
        for strategy, got in outcomes.items():
            assert got == baseline, strategy
