"""Property-based ground-truth equivalence (the reproduction's keystone).

For any stream, connected query and time window, the cumulative match set
of every incremental strategy — eager/lazy × single/path decompositions,
plus both baselines — must equal the set of isomorphisms with ``τ < tW``
found by batch VF2 over the whole (un-evicted) stream, with no duplicate
emissions. This is the formal statement of §2.1's incremental-match
function, and it pins down every moving part at once: anchored search,
hash joins, cut keys, window expiry, bitmap gating and the retrospective
pass.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro import ContinuousQueryEngine
from repro.graph import EdgeEvent, StreamingGraph, TimeWindow
from repro.isomorphism import find_isomorphisms
from repro.query import QueryGraph

ETYPES = ["A", "B", "C"]

STRATEGIES = ("Single", "SingleLazy", "Path", "PathLazy", "VF2", "IncIso")


@st.composite
def streams(draw):
    """A monotone-timestamp stream over a small vertex population."""
    n_vertices = draw(st.integers(min_value=3, max_value=6))
    n_edges = draw(st.integers(min_value=5, max_value=28))
    events = []
    t = 0.0
    for _ in range(n_edges):
        t += draw(st.integers(min_value=1, max_value=4))
        src = draw(st.integers(min_value=0, max_value=n_vertices - 1))
        dst = draw(st.integers(min_value=0, max_value=n_vertices - 1))
        if src == dst:
            continue
        etype = draw(st.sampled_from(ETYPES))
        events.append(EdgeEvent(f"n{src}", f"n{dst}", etype, float(t)))
    return events


@st.composite
def queries(draw):
    """A small connected query: path, star or fork."""
    shape = draw(st.sampled_from(["path", "star-out", "star-in", "fork"]))
    size = draw(st.integers(min_value=1, max_value=3))
    types = [draw(st.sampled_from(ETYPES)) for _ in range(size)]
    if shape == "path":
        return QueryGraph.path(types, name="q")
    query = QueryGraph(name="q")
    if shape == "star-out":
        for i, etype in enumerate(types):
            query.add_edge(0, i + 1, etype)
    elif shape == "star-in":
        for i, etype in enumerate(types):
            query.add_edge(i + 1, 0, etype)
    else:  # fork: one in, rest out
        query.add_edge(1, 0, types[0])
        for i, etype in enumerate(types[1:], start=2):
            query.add_edge(0, i, etype)
    return query


def ground_truth(events, query, window_width):
    graph = StreamingGraph()  # keep everything: the oracle sees all history
    for event in events:
        graph.add_event(event)
    window = TimeWindow(window_width)
    return {m.fingerprint for m in find_isomorphisms(graph, query, window=window)}


@settings(max_examples=40, deadline=None)
@given(
    events=streams(),
    query=queries(),
    window_choice=st.sampled_from(["inf", "wide", "tight"]),
)
def test_all_strategies_match_batch_vf2(events, query, window_choice):
    if not events:
        return
    duration = events[-1].timestamp - events[0].timestamp
    width = {
        "inf": math.inf,
        "wide": max(duration * 0.7, 2.0),
        "tight": max(duration * 0.25, 1.0),
    }[window_choice]

    truth = ground_truth(events, query, width)

    for strategy in STRATEGIES:
        engine = ContinuousQueryEngine(window=width, housekeeping_every=7)
        engine.warmup(events)  # statistics from the same stream
        engine.register(query, strategy=strategy, name=f"q-{strategy}")
        got = []
        for event in events:
            got.extend(engine.process_event(event))
        prints = [record.match.fingerprint for record in got]
        assert len(prints) == len(set(prints)), f"{strategy} emitted duplicates"
        assert set(prints) == truth, (
            f"{strategy}: {len(set(prints))} matches vs {len(truth)} expected "
            f"(window={width})"
        )
        for record in got:
            assert record.match.span < width or math.isinf(width)


@settings(max_examples=25, deadline=None)
@given(events=streams(), query=queries())
def test_lazy_without_retrospective_is_a_subset(events, query):
    """Disabling the §4 retrospective pass may lose matches but must never
    invent or duplicate them."""
    if not events:
        return
    truth = ground_truth(events, query, math.inf)
    engine = ContinuousQueryEngine(window=math.inf)
    engine.warmup(events)
    engine.register(query, strategy="SingleLazy", name="q", retrospective=False)
    got = []
    for event in events:
        got.extend(engine.process_event(event))
    prints = [record.match.fingerprint for record in got]
    assert len(prints) == len(set(prints))
    assert set(prints) <= truth


@settings(max_examples=20, deadline=None)
@given(
    events=streams(),
    query=queries(),
    split=st.floats(min_value=0.2, max_value=0.8),
    pair=st.sampled_from(
        [("Single", "SingleLazy"), ("SingleLazy", "Path"), ("PathLazy", "Single")]
    ),
)
def test_mid_stream_refresh_stays_exact(events, query, split, pair):
    """Swapping strategies mid-stream (window-replay migration) must not
    lose, duplicate or invent matches."""
    if not events:
        return
    truth = ground_truth(events, query, math.inf)
    first, second = pair
    engine = ContinuousQueryEngine(window=math.inf)
    engine.warmup(events)
    engine.register(query, strategy=first, name="q")
    cut = max(int(len(events) * split), 1)
    got = []
    for event in events[:cut]:
        got.extend(engine.process_event(event))
    engine.refresh_query("q", strategy=second)
    for event in events[cut:]:
        got.extend(engine.process_event(event))
    prints = [record.match.fingerprint for record in got]
    assert len(prints) == len(set(prints)), "refresh caused duplicates"
    assert set(prints) == truth


@settings(max_examples=25, deadline=None)
@given(
    events=streams(),
    query_list=st.lists(queries(), min_size=2, max_size=5),
    window_choice=st.sampled_from(["inf", "wide", "tight"]),
    strategy=st.sampled_from(("Single", "SingleLazy", "Path", "PathLazy")),
)
def test_dispatch_engine_is_record_identical(
    events, query_list, window_choice, strategy
):
    """The type-indexed multi-query dispatch plus compiled leaf plans must
    emit exactly the same MatchRecords — fingerprints, timestamps and
    emission order — as the seed path (dispatch force-disabled, every edge
    offered to every leaf through the interpretive backtracker)."""
    if not events:
        return
    duration = events[-1].timestamp - events[0].timestamp
    width = {
        "inf": math.inf,
        "wide": max(duration * 0.7, 2.0),
        "tight": max(duration * 0.25, 1.0),
    }[window_choice]

    def run(dispatch: bool):
        engine = ContinuousQueryEngine(
            window=width, housekeeping_every=5, dispatch=dispatch
        )
        engine.warmup(events)
        options = {} if dispatch else {"compiled_plans": False}
        for i, query in enumerate(query_list):
            engine.register(query, strategy=strategy, name=f"q{i}", **options)
        records = []
        for event in events:
            records.extend(engine.process_event(event))
        return [(r.query_name, r.match.fingerprint, r.completed_at) for r in records]

    assert run(dispatch=True) == run(dispatch=False)


@settings(max_examples=15, deadline=None)
@given(events=streams(), query_list=st.lists(queries(), min_size=2, max_size=4))
def test_dispatch_exact_for_baselines_too(events, query_list):
    """The engine-level etype prefilter on the VF2/IncIso baselines must
    not change their output either."""
    if not events:
        return

    def run(dispatch: bool):
        engine = ContinuousQueryEngine(window=math.inf, dispatch=dispatch)
        engine.warmup(events)
        for i, query in enumerate(query_list):
            strategy = "VF2" if i % 2 == 0 else "IncIso"
            engine.register(query, strategy=strategy, name=f"q{i}")
        records = []
        for event in events:
            records.extend(engine.process_event(event))
        return [(r.query_name, r.match.fingerprint, r.completed_at) for r in records]

    assert run(dispatch=True) == run(dispatch=False)


@settings(max_examples=25, deadline=None)
@given(events=streams(), query=queries())
def test_auto_strategy_is_also_exact(events, query):
    if not events:
        return
    truth = ground_truth(events, query, math.inf)
    engine = ContinuousQueryEngine(window=math.inf)
    engine.warmup(events)
    engine.register(query, strategy="auto", name="q")
    got = []
    for event in events:
        got.extend(engine.process_event(event))
    assert {record.match.fingerprint for record in got} == truth
