"""Unit tests for the SelectivityEstimator facade."""

import pytest

from repro.errors import EstimationError
from repro.graph import IN, OUT
from repro.query import QueryGraph
from repro.stats import (
    SelectivityEstimator,
    estimator_from_graph,
    make_signature,
    make_token,
)

from .util import events_from_tuples, graph_from_tuples


def warm_estimator():
    est = SelectivityEstimator()
    est.observe_events(
        events_from_tuples(
            [
                ("a", "b", "TCP"),
                ("b", "c", "ICMP"),
                ("c", "d", "TCP"),
                ("d", "e", "TCP"),
            ]
        )
    )
    return est


class TestWarmup:
    def test_observe_events_counts(self):
        est = warm_estimator()
        assert est.events_observed == 4
        assert est.edge_histogram.total == 4

    def test_cold_estimator_raises(self):
        with pytest.raises(EstimationError, match="cold"):
            SelectivityEstimator().require_warm()

    def test_warm_estimator_passes(self):
        warm_estimator().require_warm()

    def test_from_graph(self):
        graph = graph_from_tuples([("a", "b", "T"), ("b", "c", "U")])
        est = estimator_from_graph(graph)
        assert est.events_observed == 2
        assert est.edge_selectivity("T") == pytest.approx(0.5)


class TestSelectivities:
    def test_edge_selectivity(self):
        est = warm_estimator()
        assert est.edge_selectivity("TCP") == pytest.approx(0.75)
        assert est.edge_selectivity("ICMP") == pytest.approx(0.25)
        assert est.edge_selectivity("GRE") == 0.0

    def test_path_selectivity_and_seen(self):
        est = warm_estimator()
        seen = make_signature(make_token(IN, "TCP"), make_token(OUT, "ICMP"))
        unseen = make_signature(make_token(IN, "GRE"), make_token(OUT, "GRE"))
        assert est.path_seen(seen)
        assert est.path_selectivity(seen) > 0.0
        assert not est.path_seen(unseen)


class TestQueryHelpers:
    def test_single_edge_leaves(self):
        est = warm_estimator()
        query = QueryGraph.path(["TCP", "ICMP"])
        leaves = est.single_edge_leaves(query)
        assert [leaf.description for leaf in leaves] == ["TCP", "ICMP"]
        assert leaves[0].selectivity == pytest.approx(0.75)
        assert all(leaf.num_edges == 1 for leaf in leaves)

    def test_unseen_query_paths(self):
        est = warm_estimator()
        good = QueryGraph.path(["TCP", "ICMP"])
        assert est.unseen_query_paths(good) == []
        bad = QueryGraph.path(["ICMP", "ICMP"])
        assert len(est.unseen_query_paths(bad)) == 1

    def test_distributions(self):
        est = warm_estimator()
        edist = est.edge_distribution()
        assert edist.labels == ("ICMP", "TCP")
        pdist = est.path_distribution()
        assert pdist.total == est.path_counter.total

    def test_describe_smoke(self):
        text = warm_estimator().describe()
        assert "observed edges : 4" in text
        assert "edge types" in text
