"""Unit tests for the shared experiment harness."""


import pytest

from repro.analysis.experiments import (
    BenchScale,
    FIG9_STRATEGIES,
    build_query_group,
    prepare_dataset,
    run_query,
    sweep_group,
)
from repro.datasets import NetflowGenerator
from repro.query import QueryGraph


@pytest.fixture(scope="module")
def netflow_setup():
    generator = NetflowGenerator(num_events=2500, seed=3, num_hosts=400)
    return prepare_dataset(generator, warmup_fraction=0.3), generator


class TestBenchScale:
    def test_default_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        scale = BenchScale.from_env()
        assert scale.stream_events == 8_000

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "smoke")
        assert BenchScale.from_env().stream_events == 2_000

    def test_bad_level(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "galactic")
        with pytest.raises(ValueError):
            BenchScale.from_env()


class TestPrepareDataset:
    def test_split_and_warm(self, netflow_setup):
        (warmup, stream, estimator), _ = netflow_setup
        assert len(warmup) == 750
        assert len(stream) == 1750
        assert estimator.events_observed == 750


class TestRunQuery:
    def test_complete_run(self, netflow_setup):
        (warmup, stream, _), _ = netflow_setup
        query = QueryGraph.path(["TCP", "ICMP"], vtype="ip", name="q")
        stats = run_query(warmup, stream, query, "SingleLazy")
        assert stats.strategy == "SingleLazy"
        assert stats.edges_processed == len(stream)
        assert not stats.extrapolated
        assert stats.projected_seconds == stats.runtime_seconds
        assert stats.matches >= 0
        assert stats.profile is not None

    def test_budget_truncation_extrapolates(self, netflow_setup):
        (warmup, stream, _), _ = netflow_setup
        query = QueryGraph.path(["TCP", "UDP"], vtype="ip", name="q")
        stats = run_query(
            warmup, stream, query, "VF2", budget_seconds=0.001, check_every=8
        )
        assert stats.extrapolated
        assert stats.edges_processed < len(stream)
        assert stats.projected_seconds > stats.runtime_seconds

    def test_window_passthrough(self, netflow_setup):
        (warmup, stream, _), _ = netflow_setup
        query = QueryGraph.path(["TCP", "TCP"], vtype="ip", name="q")
        windowed = run_query(warmup, stream, query, "SingleLazy", window=0.05)
        unwindowed = run_query(warmup, stream, query, "SingleLazy")
        assert windowed.matches <= unwindowed.matches


class TestQueryGroups:
    def test_netflow_group(self, netflow_setup):
        (warmup, stream, estimator), generator = netflow_setup
        queries = build_query_group(generator, estimator, "path", 3, 3, seed=1)
        assert 0 < len(queries) <= 3
        for query in queries:
            assert query.num_edges == 3
            assert not estimator.unseen_query_paths(query)
            assert query.vertex_type(0) == "ip"


class TestSweep:
    def test_sweep_group_aggregates(self, netflow_setup):
        (warmup, stream, estimator), generator = netflow_setup
        queries = build_query_group(generator, estimator, "path", 3, 2, seed=2)
        result = sweep_group(
            warmup,
            stream[:400],
            queries,
            ["SingleLazy", "PathLazy"],
            kind="path",
            size=3,
        )
        for strategy in ("SingleLazy", "PathLazy"):
            assert len(result.per_strategy[strategy]) == len(queries)
            assert result.mean_projected_seconds(strategy) > 0.0
            assert not result.any_extrapolated(strategy)

    def test_fig9_strategy_list(self):
        assert "VF2" in FIG9_STRATEGIES and "PathLazy" in FIG9_STRATEGIES
