"""Fault-injection harness and crash-safe persistence tests.

Covers the :mod:`repro.runtime.faults` plan/injector machinery in
isolation (no subprocesses) plus the torn-write regression for the CRC
trailer in :mod:`repro.persistence.durable`: a snapshot corrupted after
a successful write must be *detected* at restore time, never silently
loaded.
"""

import pytest

from repro import ContinuousQueryEngine
from repro.analysis.experiments import mixed_etype_workload
from repro.errors import CheckpointError, FaultInjectionError
from repro.persistence.snapshot import (
    load_engine,
    read_snapshot_bytes,
    save_engine,
    write_snapshot_bytes,
)
from repro.runtime.faults import (
    FAULTS_ENV,
    Fault,
    FaultPlan,
    corrupt_file,
)


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultInjectionError, match="unknown fault kind"):
            Fault(kind="explode", worker=0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"worker": -1},
            {"worker": 0, "at_event": -5},
            {"worker": 0, "incarnation": -1},
        ],
    )
    def test_negative_fields_rejected(self, kwargs):
        with pytest.raises(FaultInjectionError):
            Fault(kind="kill", **kwargs)


class TestFaultPlanSerialization:
    def test_json_round_trip(self):
        plan = FaultPlan(
            (
                Fault(kind="kill", worker=0, at_event=100),
                Fault(kind="stall", worker=1, at_event=50, stall_seconds=0.1),
                Fault(kind="checkpoint_fail", worker=2, times=2),
            )
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_env_unset_is_none(self):
        assert FaultPlan.from_env(environ={}) is None
        assert FaultPlan.from_env(environ={FAULTS_ENV: "  "}) is None

    def test_from_env_inline_json(self):
        plan = FaultPlan.from_env(
            environ={FAULTS_ENV: '[{"kind": "kill", "worker": 1, "at_event": 7}]'}
        )
        assert plan.faults == (Fault(kind="kill", worker=1, at_event=7),)

    def test_from_env_file_indirection(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('[{"kind": "stall", "worker": 0, "at_event": 3}]')
        plan = FaultPlan.from_env(environ={FAULTS_ENV: f"@{path}"})
        assert plan.faults[0].kind == "stall"

    def test_from_env_missing_file_fails_loudly(self, tmp_path):
        with pytest.raises(FaultInjectionError, match="cannot read fault plan"):
            FaultPlan.from_env(environ={FAULTS_ENV: f"@{tmp_path}/nope.json"})

    @pytest.mark.parametrize(
        "text,match",
        [
            ("not json", "not valid JSON"),
            ('{"kind": "kill"}', "must be a JSON list"),
            ("[42]", "must be a JSON object"),
            ('[{"kind": "kill", "worker": 0, "color": "red"}]', "unknown fields"),
            ('[{"kind": "kill"}]', "worker"),
        ],
    )
    def test_malformed_plans_rejected(self, text, match):
        with pytest.raises(FaultInjectionError, match=match):
            FaultPlan.from_json(text)


def _rows(*indices):
    """Minimal wire rows: only the leading global stream index matters."""
    return [(i, "a", "b", "T", float(i), "x", "x") for i in indices]


class TestFaultInjector:
    def test_plan_filters_by_worker_and_incarnation(self):
        plan = FaultPlan(
            (
                Fault(kind="kill", worker=0, at_event=10),
                Fault(kind="kill", worker=1, at_event=20),
                Fault(kind="kill", worker=0, at_event=30, incarnation=1),
            )
        )
        assert bool(plan.injector(0, 0))
        assert bool(plan.injector(0, 1))
        assert not plan.injector(2, 0)
        assert not plan.injector(1, 1)

    def test_kill_splits_batch_at_threshold(self):
        injector = FaultPlan(
            (Fault(kind="kill", worker=0, at_event=5),)
        ).injector(0, 0)
        rows, die = injector.intercept(_rows(2, 3, 4))
        assert not die and [r[0] for r in rows] == [2, 3, 4]
        rows, die = injector.intercept(_rows(4, 5, 6))
        assert die
        assert [r[0] for r in rows] == [4], "events past at_event must not run"

    def test_kill_exactly_on_batch_boundary(self):
        injector = FaultPlan(
            (Fault(kind="kill", worker=0, at_event=3),)
        ).injector(0, 0)
        rows, die = injector.intercept(_rows(3, 4))
        assert die and rows == []

    def test_stall_fires_once(self, monkeypatch):
        import repro.runtime.faults as faults_mod

        naps = []
        monkeypatch.setattr(faults_mod.time, "sleep", naps.append)
        injector = FaultPlan(
            (Fault(kind="stall", worker=0, at_event=5, stall_seconds=0.25),)
        ).injector(0, 0)
        injector.intercept(_rows(1, 2))
        assert naps == []
        injector.intercept(_rows(5, 6))
        assert naps == [0.25]
        injector.intercept(_rows(7, 8))
        assert naps == [0.25], "stall is one-shot"

    def test_checkpoint_fail_consumes_times_triggers(self):
        injector = FaultPlan(
            (Fault(kind="checkpoint_fail", worker=0, times=2),)
        ).injector(0, 0)
        for _ in range(2):
            with pytest.raises(OSError, match="injected"):
                injector.before_checkpoint()
        injector.before_checkpoint()  # budget spent: no-op


class TestCorruptFile:
    def test_flip_and_truncate(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"abcdefgh")
        corrupt_file(path)
        assert len(path.read_bytes()) == 8
        assert path.read_bytes() != b"abcdefgh"
        corrupt_file(path, mode="truncate")
        assert len(path.read_bytes()) == 4

    def test_unknown_mode_rejected(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"xy")
        with pytest.raises(FaultInjectionError, match="unknown corruption mode"):
            corrupt_file(path, mode="shred")


class TestTornWriteRegression:
    """A snapshot damaged after its (atomic, fsynced) write must be
    *detected* at restore — never silently loaded. A flipped byte trips
    the CRC trailer before the structural decoder runs; a truncation
    that destroys the trailer itself falls through to the structural
    decoder, which must still reject the torn payload."""

    def test_flipped_byte_trips_crc_trailer(self, tmp_path):
        path = tmp_path / "snap.bin"
        payload = b"engine state payload" * 64
        write_snapshot_bytes(payload, path)
        assert read_snapshot_bytes(path) == payload
        corrupt_file(path, mode="flip")
        with pytest.raises(CheckpointError, match="corrupt snapshot"):
            read_snapshot_bytes(path)

    @pytest.mark.parametrize("mode", ["flip", "truncate"])
    def test_corrupted_engine_snapshot_never_restores(self, tmp_path, mode):
        events, queries = mixed_etype_workload(
            200, num_queries=3, num_etypes=8, seed=5, population=24
        )
        for i, query in enumerate(queries):
            query.name = f"q{i}"
        engine = ContinuousQueryEngine(window=30.0, housekeeping_every=5)
        engine.warmup(events)
        for query in queries:
            engine.register(query, strategy="Single", name=query.name)
        engine.run(events)
        path = tmp_path / "engine.bin"
        save_engine(engine, path, cursor=len(events))
        load_engine(path, queries)  # intact: restores fine
        corrupt_file(path, mode=mode)
        with pytest.raises(CheckpointError):
            load_engine(path, queries)
