"""Unit tests for random query generation (§6.4.1)."""

import pytest

from repro.datasets import LSBenchGenerator, NetflowGenerator
from repro.errors import QueryError
from repro.query.generator import (
    QueryGenerator,
    filter_valid,
    sample_by_expected_selectivity,
)
from repro.stats import SelectivityEstimator


@pytest.fixture(scope="module")
def netflow_estimator():
    est = SelectivityEstimator()
    est.observe_events(NetflowGenerator(num_events=4000, seed=1).events())
    return est


@pytest.fixture(scope="module")
def lsbench_schema():
    return LSBenchGenerator(num_events=1).schema_triples()


class TestAlphabetShapes:
    def test_path_query(self):
        gen = QueryGenerator(etypes=["A", "B"], vertex_type="ip", seed=1)
        query = gen.path_query(4)
        assert query.num_edges == 4
        assert query.num_vertices == 5
        assert query.is_connected()
        assert all(query.vertex_type(v) == "ip" for v in query.vertices())

    def test_path_length_validated(self):
        gen = QueryGenerator(etypes=["A"], seed=1)
        with pytest.raises(QueryError):
            gen.path_query(0)

    def test_binary_tree_query(self):
        gen = QueryGenerator(etypes=["A", "B"], seed=2)
        query = gen.binary_tree_query(7)
        assert query.num_vertices == 7
        assert query.num_edges == 6
        assert query.is_connected()
        # every vertex has at most 2 children
        children = {}
        for edge in query.edges:
            children[edge.src] = children.get(edge.src, 0) + 1
        assert all(c <= 2 for c in children.values())

    def test_random_tree_query(self):
        gen = QueryGenerator(etypes=["A"], seed=3)
        query = gen.random_tree_query(6)
        assert query.num_edges == 5
        assert query.is_connected()

    def test_k_partite_query(self):
        gen = QueryGenerator(etypes=["A", "B"], seed=4)
        star = gen.k_partite_query(4)
        assert star.num_edges == 4
        assert all(e.src == 0 for e in star.edges)

    def test_deterministic_per_seed(self):
        q1 = QueryGenerator(etypes=["A", "B"], seed=9).path_query(3)
        q2 = QueryGenerator(etypes=["A", "B"], seed=9).path_query(3)
        assert [e.etype for e in q1.edges] == [e.etype for e in q2.edges]

    def test_requires_alphabet_or_schema(self):
        with pytest.raises(QueryError):
            QueryGenerator()


class TestSchemaShapes:
    def test_schema_path_follows_triples(self, lsbench_schema):
        valid = {(t.src_type, t.etype, t.dst_type) for t in lsbench_schema}
        gen = QueryGenerator(triples=lsbench_schema, seed=5)
        for _ in range(20):
            query = gen.schema_path_query(3)
            if query is None:
                continue
            for edge in query.edges:
                triple = (
                    query.vertex_type(edge.src),
                    edge.etype,
                    query.vertex_type(edge.dst),
                )
                assert triple in valid

    def test_schema_tree_follows_triples(self, lsbench_schema):
        valid = {(t.src_type, t.etype, t.dst_type) for t in lsbench_schema}
        gen = QueryGenerator(triples=lsbench_schema, seed=6)
        for _ in range(20):
            query = gen.schema_tree_query(4)
            if query is None:
                continue
            assert query.num_edges == 4
            assert query.is_connected()
            for edge in query.edges:
                triple = (
                    query.vertex_type(edge.src),
                    edge.etype,
                    query.vertex_type(edge.dst),
                )
                assert triple in valid

    def test_schema_required(self):
        gen = QueryGenerator(etypes=["A"], seed=1)
        with pytest.raises(QueryError):
            gen.schema_path_query(2)


class TestGroups:
    def test_generate_group_counts_and_names(self):
        gen = QueryGenerator(etypes=["A", "B"], seed=7)
        group = gen.generate_group("path", 3, 5)
        assert len(group) == 5
        assert len({q.name for q in group}) == 5

    def test_unknown_kind(self):
        gen = QueryGenerator(etypes=["A"], seed=1)
        with pytest.raises(QueryError, match="unknown query kind"):
            gen.generate_group("cycle", 3, 2)

    def test_schema_group(self, lsbench_schema):
        gen = QueryGenerator(triples=lsbench_schema, seed=8)
        group = gen.generate_group("stree", 3, 4)
        assert 0 < len(group) <= 4


class TestValidityFilter:
    def test_filter_drops_unseen_paths(self, netflow_estimator):
        gen = QueryGenerator(etypes= ["TCP", "UDP", "NOSUCH"], vertex_type="ip", seed=9)
        queries = [gen.path_query(3) for _ in range(30)]
        valid = filter_valid(queries, netflow_estimator)
        for query in valid:
            assert not netflow_estimator.unseen_query_paths(query)
        # queries using the NOSUCH type must have been dropped
        assert all("NOSUCH" not in [e.etype for e in q.edges] for q in valid)

    def test_all_valid_pass_through(self, netflow_estimator):
        gen = QueryGenerator(etypes=["TCP", "UDP"], vertex_type="ip", seed=10)
        queries = [gen.path_query(2) for _ in range(10)]
        assert len(filter_valid(queries, netflow_estimator)) == 10


class TestExpectedSelectivitySampling:
    def test_reduces_to_count(self, netflow_estimator):
        gen = QueryGenerator(
            etypes=["TCP", "UDP", "ICMP", "GRE"], vertex_type="ip", seed=11
        )
        queries = filter_valid(
            [gen.path_query(3) for _ in range(40)], netflow_estimator
        )
        sample = sample_by_expected_selectivity(queries, netflow_estimator, 5)
        assert len(sample) == 5
        assert len({id(q) for q in sample}) == 5

    def test_small_input_returned_whole(self, netflow_estimator):
        gen = QueryGenerator(etypes=["TCP"], vertex_type="ip", seed=12)
        queries = [gen.path_query(2) for _ in range(3)]
        sample = sample_by_expected_selectivity(queries, netflow_estimator, 10)
        assert len(sample) == 3

    def test_empty_cases(self, netflow_estimator):
        assert sample_by_expected_selectivity([], netflow_estimator, 5) == []
        gen = QueryGenerator(etypes=["TCP"], vertex_type="ip", seed=13)
        assert (
            sample_by_expected_selectivity([gen.path_query(2)], netflow_estimator, 0)
            == []
        )

    def test_spread_covers_range(self, netflow_estimator):
        """Sampled queries should span the selectivity range, not cluster."""
        from repro.sjtree.builder import preview_leaves
        from repro.stats import expected_selectivity, log10_or_floor

        gen = QueryGenerator(
            etypes=["TCP", "UDP", "ICMP", "IPv6", "GRE", "ESP"],
            vertex_type="ip",
            seed=14,
        )
        queries = filter_valid(
            [gen.path_query(3) for _ in range(60)], netflow_estimator
        )
        if len(queries) < 8:
            pytest.skip("not enough valid queries generated")
        sample = sample_by_expected_selectivity(queries, netflow_estimator, 8)

        def log_sel(query):
            leaves = preview_leaves(query, netflow_estimator, "path")
            return log10_or_floor(expected_selectivity(leaves))

        all_scores = sorted(log_sel(q) for q in queries)
        sample_scores = sorted(log_sel(q) for q in sample)
        assert sample_scores[0] <= all_scores[len(all_scores) // 4]
        assert sample_scores[-1] >= all_scores[-1 - len(all_scores) // 4]
