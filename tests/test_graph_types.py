"""Unit tests for repro.graph.types."""

import pytest

from repro.graph import Edge, EdgeEvent, IN, OUT, iter_events_sorted, span


def make_edge(src="a", dst="b", etype="T", ts=1.0, edge_id=0):
    return Edge(edge_id=edge_id, src=src, dst=dst, etype=etype, timestamp=ts)


class TestEdge:
    def test_endpoints(self):
        edge = make_edge()
        assert edge.endpoints() == ("a", "b")

    def test_other_endpoint(self):
        edge = make_edge()
        assert edge.other_endpoint("a") == "b"
        assert edge.other_endpoint("b") == "a"

    def test_other_endpoint_self_loop(self):
        loop = make_edge(src="a", dst="a")
        assert loop.other_endpoint("a") == "a"

    def test_other_endpoint_rejects_non_member(self):
        with pytest.raises(ValueError):
            make_edge().other_endpoint("z")

    def test_direction_from(self):
        edge = make_edge()
        assert edge.direction_from("a") == OUT
        assert edge.direction_from("b") == IN

    def test_direction_from_self_loop_is_out(self):
        loop = make_edge(src="a", dst="a")
        assert loop.direction_from("a") == OUT

    def test_direction_from_rejects_non_member(self):
        with pytest.raises(ValueError):
            make_edge().direction_from("z")

    def test_edges_are_hashable_values(self):
        assert make_edge() == make_edge()
        assert len({make_edge(), make_edge()}) == 1


class TestEdgeEvent:
    def test_reversed_flips_direction_and_types(self):
        event = EdgeEvent("a", "b", "T", 1.0, "x", "y")
        rev = event.reversed()
        assert (rev.src, rev.dst) == ("b", "a")
        assert (rev.src_type, rev.dst_type) == ("y", "x")
        assert rev.etype == "T"
        assert rev.timestamp == 1.0

    def test_default_vertex_types(self):
        event = EdgeEvent("a", "b", "T", 0.0)
        assert event.src_type == event.dst_type == "node"


class TestSpan:
    def test_empty_is_zero(self):
        assert span([]) == 0.0

    def test_single_edge_is_zero(self):
        assert span([make_edge(ts=5.0)]) == 0.0

    def test_interval(self):
        edges = [
            make_edge(ts=2.0),
            make_edge(ts=9.5, edge_id=1),
            make_edge(ts=4.0, edge_id=2),
        ]
        assert span(edges) == pytest.approx(7.5)


class TestIterEventsSorted:
    def test_sorts_by_timestamp(self):
        events = [
            EdgeEvent("a", "b", "T", 3.0),
            EdgeEvent("c", "d", "T", 1.0),
            EdgeEvent("e", "f", "T", 2.0),
        ]
        stamps = [e.timestamp for e in iter_events_sorted(events)]
        assert stamps == [1.0, 2.0, 3.0]

    def test_stable_for_equal_stamps(self):
        events = [EdgeEvent("a", "b", "T", 1.0), EdgeEvent("c", "d", "T", 1.0)]
        ordered = list(iter_events_sorted(events))
        assert ordered[0].src == "a" and ordered[1].src == "c"
