"""Unit tests for the 1-edge histogram."""

import pytest

from repro.stats import EdgeTypeHistogram


class TestEdgeTypeHistogram:
    def test_add_and_count(self):
        hist = EdgeTypeHistogram()
        hist.add("TCP")
        hist.add("TCP")
        hist.add("UDP")
        assert hist.count("TCP") == 2
        assert hist.count("UDP") == 1
        assert hist.count("GRE") == 0
        assert hist.total == 3
        assert len(hist) == 2

    def test_bulk_add(self):
        hist = EdgeTypeHistogram()
        hist.add("TCP", count=10)
        assert hist.total == 10

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError):
            EdgeTypeHistogram().add("TCP", count=-1)

    def test_remove(self):
        hist = EdgeTypeHistogram()
        hist.add("TCP", 3)
        hist.remove("TCP")
        assert hist.count("TCP") == 2
        assert hist.total == 2

    def test_remove_to_zero_drops_key(self):
        hist = EdgeTypeHistogram()
        hist.add("TCP")
        hist.remove("TCP")
        assert "TCP" not in set(hist.types())
        assert hist.total == 0

    def test_over_remove_rejected(self):
        hist = EdgeTypeHistogram()
        hist.add("TCP")
        with pytest.raises(ValueError):
            hist.remove("TCP", 2)

    def test_selectivity(self):
        hist = EdgeTypeHistogram()
        hist.add("TCP", 3)
        hist.add("GRE", 1)
        assert hist.selectivity("TCP") == pytest.approx(0.75)
        assert hist.selectivity("GRE") == pytest.approx(0.25)
        assert hist.selectivity("missing") == 0.0

    def test_selectivity_empty(self):
        assert EdgeTypeHistogram().selectivity("TCP") == 0.0

    def test_distribution_ascending(self):
        hist = EdgeTypeHistogram()
        hist.add("TCP", 5)
        hist.add("GRE", 1)
        hist.add("UDP", 3)
        assert hist.distribution() == [("GRE", 1), ("UDP", 3), ("TCP", 5)]

    def test_as_dict_is_a_copy(self):
        hist = EdgeTypeHistogram()
        hist.add("TCP")
        snapshot = hist.as_dict()
        snapshot["TCP"] = 99
        assert hist.count("TCP") == 1
