"""Cross-module integration tests.

These exercise whole pipelines rather than single modules: decomposition
→ ASCII serialization → reload → search; the Fig. 1 attack scenario end
to end; cyclic queries (the capability the paper highlights over DAG
decompositions, §2.2); and the package-level doctest.
"""

import doctest

import pytest

import repro
from repro import ContinuousQueryEngine, QueryGraph, StreamingGraph
from repro.datasets import NetflowGenerator, interleave_at, split_stream
from repro.graph import EdgeEvent
from repro.isomorphism import find_isomorphisms
from repro.query import insider_infiltration
from repro.search import DynamicGraphSearch
from repro.sjtree import build_sj_tree, dumps, loads
from repro.stats import SelectivityEstimator

from .util import events_from_tuples, fingerprints


class TestSerializedTreePipeline:
    """The paper's two-step workflow: decomposition stored as ASCII, then
    query processing initialised from the file (§6.1)."""

    def test_loaded_tree_produces_identical_matches(self):
        generator = NetflowGenerator(num_events=2_000, num_hosts=300, seed=5)
        events = generator.generate()
        warmup, live = split_stream(events, 0.3)
        estimator = SelectivityEstimator()
        estimator.observe_events(warmup)
        query = QueryGraph.path(["TCP", "ICMP"], vtype="ip", name="q")

        fresh_tree = build_sj_tree(query, estimator, "path")
        loaded_tree = loads(dumps(fresh_tree), query)

        results = {}
        for label, tree in (("fresh", fresh_tree), ("loaded", loaded_tree)):
            graph = StreamingGraph()
            search = DynamicGraphSearch(graph, tree)
            found = []
            for event in live:
                found.extend(search.process_edge(graph.add_event(event)))
            results[label] = fingerprints(found)
        assert results["fresh"] == results["loaded"]
        assert results["fresh"]


class TestCyclicQueries:
    """§2.2: DAG-based decompositions cannot express cyclic queries such
    as the infiltration pattern; the SJ-Tree handles them exactly."""

    def cycle_query(self):
        query = QueryGraph(name="cycle3")
        query.add_edge(0, 1, "T")
        query.add_edge(1, 2, "T")
        query.add_edge(2, 0, "T")
        return query

    def stream(self):
        return events_from_tuples(
            [
                ("a", "b", "T", 1.0),
                ("b", "c", "T", 2.0),
                ("x", "y", "T", 3.0),
                ("c", "a", "T", 4.0),  # closes a->b->c->a
                ("y", "x", "T", 5.0),  # 2-cycle, not a triangle
            ]
        )

    @pytest.mark.parametrize(
        "strategy", ["Single", "SingleLazy", "Path", "PathLazy", "VF2"]
    )
    def test_cycle_detected_by_every_strategy(self, strategy):
        engine = ContinuousQueryEngine()
        engine.warmup(self.stream())
        engine.register(self.cycle_query(), strategy=strategy)
        records = []
        for event in self.stream():
            records.extend(engine.process_event(event))
        found = fingerprints(records)
        # 3 rotations of the single triangle (matches are mappings)
        assert len(found) == 3
        for fp in found:
            assert {edge_id for _, edge_id in fp} == {0, 1, 3}

    def test_cycle_matches_batch_ground_truth(self):
        graph = StreamingGraph()
        for event in self.stream():
            graph.add_event(event)
        truth = fingerprints(find_isomorphisms(graph, self.cycle_query()))
        assert len(truth) == 3


class TestAttackScenario:
    """Compressed version of the cyber example: a planted infiltration
    path must be reported exactly once, against background noise."""

    def test_planted_infiltration_detected(self):
        background = NetflowGenerator(
            num_events=3_000, num_hosts=500, seed=9
        ).generate()
        warmup, live = split_stream(background, 0.3)
        # a few benign RDP edges so the estimator knows the type
        noise = [
            EdgeEvent(f"ip{i}", f"ip{i + 7}", "RDP", 0.0, "ip", "ip")
            for i in range(5)
        ]
        attack = [
            EdgeEvent("ipA", "ipB", "RDP", 0.0, "ip", "ip"),
            EdgeEvent("ipB", "ipC", "RDP", 0.0, "ip", "ip"),
        ]
        stream = list(
            interleave_at(live, noise + attack, [10, 60, 110, 160, 210, 800, 1300])
        )
        estimator_prefix = warmup + stream[:300]

        engine = ContinuousQueryEngine(window=1_000.0)
        engine.warmup(estimator_prefix)
        engine.register(insider_infiltration(hops=2, vtype="ip"), strategy="auto")
        records = []
        for event in stream:
            records.extend(engine.process_event(event))
        chains = {
            tuple(r.match.vertex_map[v] for v in sorted(r.match.vertex_map))
            for r in records
        }
        assert ("ipA", "ipB", "ipC") in chains

    def test_detection_is_immediate(self):
        """The match must be reported at its completing edge's timestamp."""
        engine = ContinuousQueryEngine()
        engine.warmup(events_from_tuples([("x", "y", "RDP"), ("y", "z", "RDP")]))
        engine.register(insider_infiltration(hops=2, vtype=None), strategy="Single")
        engine.process_event(EdgeEvent("a", "b", "RDP", 10.0))
        records = engine.process_event(EdgeEvent("b", "c", "RDP", 20.0))
        assert len(records) == 1
        assert records[0].completed_at == 20.0


class TestPathLazyDegradation:
    """A query containing 2-edge paths unseen in the sample must degrade
    to 1-edge leaves under the path catalogue — and stay exact."""

    def test_unseen_signature_falls_back_and_stays_exact(self):
        warmup = events_from_tuples(
            [("a", "b", "T"), ("c", "d", "U")] * 5  # T and U never chain
        )
        stream = events_from_tuples([("p", "q", "T", 100.0), ("q", "r", "U", 101.0)])
        engine = ContinuousQueryEngine()
        engine.warmup(warmup)
        query = QueryGraph.path(["T", "U"], name="q")
        registered = engine.register(query, strategy="PathLazy")
        # the T~U signature was never observed: 1-edge leaves only
        assert all(len(leaf.edge_ids) == 1 for leaf in registered.tree.leaves())
        records = []
        for event in stream:
            records.extend(engine.process_event(event))
        assert len(records) == 1


class TestSingleLeafLazy:
    def test_one_edge_query_under_lazy(self):
        engine = ContinuousQueryEngine()
        engine.warmup(events_from_tuples([("a", "b", "T")]))
        engine.register(QueryGraph.path(["T"], name="q"), strategy="SingleLazy")
        records = engine.process_event(EdgeEvent("x", "y", "T", 1.0))
        assert len(records) == 1
        assert records[0].match.vertex_map == {0: "x", 1: "y"}


def test_package_docstring_examples():
    failures, tried = doctest.testmod(repro, verbose=False).failed, None
    assert failures == 0
