"""Tests for networkx interop and parser round-trip properties."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import QueryError
from repro.query import QueryGraph, format_query, parse_query
from repro.query.interop import from_networkx, to_networkx


class TestFromNetworkx:
    def test_digraph_conversion(self):
        g = nx.DiGraph()
        g.add_node("attacker", vtype="ip")
        g.add_node("victim", vtype="ip", binding="10.0.0.9")
        g.add_edge("attacker", "victim", etype="TCP")
        query = from_networkx(g)
        assert query.num_edges == 1
        assert query.vertex_type(0) == "ip"
        assert query.binding(1) == "10.0.0.9"
        assert query.edges[0].etype == "TCP"

    def test_multidigraph_parallel_edges(self):
        g = nx.MultiDiGraph()
        g.add_edge("a", "b", etype="TCP")
        g.add_edge("a", "b", etype="LARGE_MSG")
        query = from_networkx(g)
        assert query.num_edges == 2
        assert sorted(e.etype for e in query.edges) == ["LARGE_MSG", "TCP"]

    def test_undirected_rejected(self):
        with pytest.raises(QueryError, match="directed"):
            from_networkx(nx.Graph())

    def test_missing_etype_rejected(self):
        g = nx.DiGraph()
        g.add_edge("a", "b")
        with pytest.raises(QueryError, match="etype"):
            from_networkx(g)

    def test_empty_rejected(self):
        g = nx.DiGraph()
        g.add_node("lonely")
        with pytest.raises(QueryError, match="no edges"):
            from_networkx(g)

    def test_custom_attribute_names(self):
        g = nx.DiGraph()
        g.add_edge("a", "b", rel="knows")
        query = from_networkx(g, etype_attr="rel")
        assert query.edges[0].etype == "knows"


class TestRoundTrip:
    def test_networkx_round_trip(self):
        original = QueryGraph.path(["ESP", "TCP"], vtype="ip", name="rt")
        original.add_vertex(0, binding="ip1")
        back = from_networkx(to_networkx(original), name="rt")
        assert back.num_edges == original.num_edges
        assert [e.etype for e in back.edges] == [e.etype for e in original.edges]
        assert back.vertex_type(0) == "ip"
        assert back.binding(0) == "ip1"

    def test_round_tripped_query_is_runnable(self):
        from repro import ContinuousQueryEngine
        from repro.graph import EdgeEvent

        query = from_networkx(to_networkx(QueryGraph.path(["T", "U"], name="q")))
        query.name = "q"
        engine = ContinuousQueryEngine()
        engine.warmup([EdgeEvent("a", "b", "T", 0.0), EdgeEvent("b", "c", "U", 1.0)])
        engine.register(query, strategy="SingleLazy")
        records = []
        for event in [EdgeEvent("x", "y", "T", 2.0), EdgeEvent("y", "z", "U", 3.0)]:
            records.extend(engine.process_event(event))
        assert len(records) == 1


@st.composite
def random_structured_queries(draw):
    n_edges = draw(st.integers(min_value=1, max_value=6))
    etypes = ["TCP", "UDP", "RDP"]
    vtypes = [None, "ip", "host"]
    query = QueryGraph(name="prop")
    query.add_vertex(0, draw(st.sampled_from(vtypes)))
    next_vertex = 1
    for _ in range(n_edges):
        anchor = draw(st.integers(min_value=0, max_value=next_vertex - 1))
        query.add_vertex(next_vertex, draw(st.sampled_from(vtypes)))
        if draw(st.booleans()):
            query.add_edge(anchor, next_vertex, draw(st.sampled_from(etypes)))
        else:
            query.add_edge(next_vertex, anchor, draw(st.sampled_from(etypes)))
        next_vertex += 1
    if draw(st.booleans()):
        bound = draw(st.integers(min_value=0, max_value=next_vertex - 1))
        query.add_vertex(bound, None, binding=f"ip{bound}")
    return query


class TestParserProperties:
    @settings(max_examples=60, deadline=None)
    @given(query=random_structured_queries())
    def test_dsl_round_trip_preserves_structure(self, query):
        parsed = parse_query(format_query(query))
        assert parsed.num_edges == query.num_edges
        assert parsed.num_vertices == query.num_vertices
        # the parser renumbers vertices in first-appearance order over the
        # edge list; rebuild that correspondence before comparing per-vertex
        rename: dict[int, int] = {}
        for edge in query.edges:
            for vertex in (edge.src, edge.dst):
                rename.setdefault(vertex, len(rename))
        assert [
            (rename[e.src], e.etype, rename[e.dst]) for e in query.edges
        ] == [(e.src, e.etype, e.dst) for e in parsed.edges]
        for vertex in query.vertices():
            mapped = rename[vertex]
            assert parsed.vertex_type(mapped) == query.vertex_type(vertex)
            assert parsed.binding(mapped) == query.binding(vertex)

    @settings(max_examples=60, deadline=None)
    @given(query=random_structured_queries())
    def test_networkx_round_trip_property(self, query):
        # networkx iterates edges grouped by source node, so edge *order*
        # (and hence edge ids) may permute; structure must survive as a set
        back = from_networkx(to_networkx(query))
        assert back.num_edges == query.num_edges
        assert sorted((e.src, e.etype, e.dst) for e in back.edges) == sorted(
            (e.src, e.etype, e.dst) for e in query.edges
        )
        for vertex in query.vertices():
            assert back.vertex_type(vertex) == query.vertex_type(vertex)
            assert back.binding(vertex) == query.binding(vertex)
