"""Unit tests for LAZY-SEARCH (Algorithm 3)."""

import math

import pytest

from repro.graph import StreamingGraph
from repro.query import QueryGraph
from repro.search import LazySearch
from repro.sjtree import SJTree, build_sj_tree
from repro.stats import SelectivityEstimator

from .util import events_from_tuples, fingerprints


def stats_rows():
    """ESP rare, TCP common — forces leaf order [ESP, TCP, ...]."""
    rows = [("s0", "s1", "ESP"), ("s1", "s2", "ICMP")]
    rows += [(f"t{i}", f"t{i+1}", "TCP") for i in range(20)]
    rows += [(f"u{i}", f"u{i+1}", "ICMP") for i in range(5)]
    rows += [("s2", "s3", "ESP"), ("q0", "q1", "TCP"), ("q1", "q2", "ESP")]
    return rows


def make_lazy(query, window=math.inf, strategy="single", retrospective=True):
    estimator = SelectivityEstimator()
    estimator.observe_events(events_from_tuples(stats_rows()))
    graph = StreamingGraph(window)
    tree = build_sj_tree(query, estimator, strategy)
    return graph, LazySearch(
        graph, tree, name="SingleLazy", retrospective=retrospective
    )


class TestLeafGating:
    def test_most_selective_leaf_is_first(self):
        query = QueryGraph.path(["TCP", "ESP"])
        _, search = make_lazy(query)
        first_leaf = search.tree.leaves()[0]
        types = {e.etype for e in first_leaf.fragment.edges}
        assert types == {"ESP"}

    def test_non_first_leaves_skipped_until_enabled(self):
        query = QueryGraph.path(["ESP", "TCP"])
        graph, search = make_lazy(query)
        # a TCP edge with no ESP context: leaf for TCP is disabled everywhere
        edge = graph.add_edge("x", "y", "TCP", 1.0)
        assert search.process_edge(edge) == []
        assert search.profile.counters.get("leaf_matches", 0) == 0

    def test_enablement_after_selective_match(self):
        query = QueryGraph.path(["ESP", "TCP"])
        graph, search = make_lazy(query)
        esp = graph.add_edge("a", "b", "ESP", 1.0)
        search.process_edge(esp)
        assert search.bitmap.enabled("a", 1)
        assert search.bitmap.enabled("b", 1)
        tcp = graph.add_edge("b", "c", "TCP", 2.0)
        results = search.process_edge(tcp)
        assert len(results) == 1
        assert results[0].vertex_map == {0: "a", 1: "b", 2: "c"}

    def test_chain_of_enablements(self):
        query = QueryGraph.path(["ESP", "TCP", "ICMP"])
        graph, search = make_lazy(query)
        found = []
        for src, dst, etype, ts in [
            ("a", "b", "ESP", 1.0),
            ("b", "c", "TCP", 2.0),
            ("c", "d", "ICMP", 3.0),
        ]:
            found.extend(search.process_edge(graph.add_edge(src, dst, etype, ts)))
        assert len(found) == 1


class TestArrivalOrderRobustness:
    def test_retrospective_search_finds_earlier_arrivals(self):
        query = QueryGraph.path(["ESP", "TCP"])
        graph, search = make_lazy(query)
        # TCP arrives BEFORE the selective ESP edge
        tcp = graph.add_edge("b", "c", "TCP", 1.0)
        assert search.process_edge(tcp) == []
        esp = graph.add_edge("a", "b", "ESP", 2.0)
        results = search.process_edge(esp)
        assert len(results) == 1
        assert search.profile.counters.get("retro_matches", 0) >= 1

    def test_without_retrospective_the_match_is_missed(self):
        query = QueryGraph.path(["ESP", "TCP"])
        graph, search = make_lazy(query, retrospective=False)
        search.process_edge(graph.add_edge("b", "c", "TCP", 1.0))
        results = search.process_edge(graph.add_edge("a", "b", "ESP", 2.0))
        assert results == []  # the §4 failure mode, reproduced

    def test_any_arrival_permutation_of_three(self):
        import itertools

        query = QueryGraph.path(["ESP", "TCP", "ICMP"])
        edges = [
            ("a", "b", "ESP"),
            ("b", "c", "TCP"),
            ("c", "d", "ICMP"),
        ]
        for perm in itertools.permutations(range(3)):
            graph, search = make_lazy(query)
            found = []
            for ts, index in enumerate(perm):
                src, dst, etype = edges[index]
                found.extend(
                    search.process_edge(graph.add_edge(src, dst, etype, float(ts)))
                )
            assert len(fingerprints(found)) == 1, perm

    def test_no_duplicate_emissions(self):
        query = QueryGraph.path(["ESP", "TCP"])
        graph, search = make_lazy(query)
        found = []
        # several overlapping matches sharing the ESP edge
        found.extend(search.process_edge(graph.add_edge("b", "c1", "TCP", 1.0)))
        found.extend(search.process_edge(graph.add_edge("b", "c2", "TCP", 2.0)))
        found.extend(search.process_edge(graph.add_edge("a", "b", "ESP", 3.0)))
        found.extend(search.process_edge(graph.add_edge("b", "c3", "TCP", 4.0)))
        prints = [m.fingerprint for m in found]
        assert len(prints) == len(set(prints)) == 3


class TestSharedVertexScenario:
    def test_second_selective_match_reuses_enabled_partner(self):
        """Two ESP matches sharing vertex b must both pair with the TCP edge."""
        query = QueryGraph.path(["ESP", "TCP"])
        graph, search = make_lazy(query)
        found = []
        found.extend(search.process_edge(graph.add_edge("a1", "b", "ESP", 1.0)))
        found.extend(search.process_edge(graph.add_edge("b", "c", "TCP", 2.0)))
        found.extend(search.process_edge(graph.add_edge("a2", "b", "ESP", 3.0)))
        assert len(fingerprints(found)) == 2


class TestWindowing:
    def test_expired_partials_do_not_join(self):
        query = QueryGraph.path(["ESP", "TCP"])
        graph, search = make_lazy(query, window=10.0)
        search.process_edge(graph.add_edge("a", "b", "ESP", 0.0))
        results = search.process_edge(graph.add_edge("b", "c", "TCP", 100.0))
        assert results == []

    def test_housekeeping_compacts_state(self):
        query = QueryGraph.path(["ESP", "TCP"])
        graph, search = make_lazy(query, window=10.0)
        search.process_edge(graph.add_edge("a", "b", "ESP", 0.0))
        graph.add_edge("zz", "zy", "TCP", 1000.0)
        search.housekeeping()
        assert search.partial_match_count() == 0
        assert search.bitmap.rows() == 0  # a, b evicted with their edges


class TestJoinOrderPrecondition:
    """Lazy Search requires a frontier-connected leaf order; this surfaced
    as lost matches in the join-order ablation before the guard existed."""

    def test_disconnected_join_order_rejected_by_lazy(self):
        from repro.errors import DecompositionError
        from repro.sjtree import SJTree
        from repro.graph import StreamingGraph

        query = QueryGraph.path(["ESP", "TCP", "ICMP"])
        # leaf0 {e0: v0-v1} and leaf1 {e2: v2-v3} share no vertex
        tree = SJTree.from_leaf_partition(query, [(0,), (2,), (1,)])
        assert not tree.is_join_order_connected()
        with pytest.raises(DecompositionError, match="frontier-connected"):
            LazySearch(StreamingGraph(), tree)

    def test_eager_accepts_and_stays_exact_on_disconnected_order(self):
        from repro.search import DynamicGraphSearch
        from repro.sjtree import SJTree
        from repro.graph import StreamingGraph

        query = QueryGraph.path(["ESP", "TCP", "ICMP"])
        connected = SJTree.from_leaf_partition(query, [(0,), (1,), (2,)])
        disconnected = SJTree.from_leaf_partition(query, [(0,), (2,), (1,)])
        stream = [
            ("a", "b", "ESP", 1.0),
            ("b", "c", "TCP", 2.0),
            ("c", "d", "ICMP", 3.0),
            ("x", "b", "ESP", 4.0),
        ]
        results = {}
        for label, tree in (("good", connected), ("bad", disconnected)):
            graph = StreamingGraph()
            search = DynamicGraphSearch(graph, tree)
            found = []
            for src, dst, etype, ts in stream:
                found.extend(search.process_edge(graph.add_edge(src, dst, etype, ts)))
            results[label] = fingerprints(found)
        assert results["good"] == results["bad"] != set()

    def test_builder_trees_always_satisfy_the_precondition(self):
        query = QueryGraph.path(["ESP", "TCP", "ICMP", "GRE"])
        graph, search = make_lazy(query)  # built via build_sj_tree
        assert search.tree.is_join_order_connected()


class TestLazyVsEagerEquivalence:
    def test_same_matches_on_a_small_stream(self):
        from repro.search import DynamicGraphSearch

        query = QueryGraph.path(["ESP", "TCP", "ICMP"])
        stream = [
            ("a", "b", "ESP", 1.0),
            ("b", "c", "TCP", 2.0),
            ("x", "b", "ESP", 3.0),
            ("c", "d", "ICMP", 4.0),
            ("c", "e", "ICMP", 5.0),
            ("b", "f", "TCP", 6.0),
            ("f", "g", "ICMP", 7.0),
        ]
        results = {}
        for lazy in (False, True):
            estimator = SelectivityEstimator()
            estimator.observe_events(events_from_tuples(stats_rows()))
            graph = StreamingGraph()
            tree = build_sj_tree(query, estimator, "single")
            search = (
                LazySearch(graph, tree)
                if lazy
                else DynamicGraphSearch(graph, tree)
            )
            found = []
            for src, dst, etype, ts in stream:
                found.extend(search.process_edge(graph.add_edge(src, dst, etype, ts)))
            results[lazy] = fingerprints(found)
        assert results[True] == results[False] != set()
