"""Unit tests for Match construction, joins and projections."""

import pytest

from repro.graph import Edge
from repro.isomorphism import Match, merge_all
from repro.query import QueryGraph


def edge(eid, src, dst, etype="T", ts=0.0):
    return Edge(edge_id=eid, src=src, dst=dst, etype=etype, timestamp=ts)


@pytest.fixture
def path_query():
    return QueryGraph.path(["T", "T", "T"])  # v0->v1->v2->v3


def qmap(query):
    return query.edges_by_id()


class TestBuild:
    def test_valid_build(self, path_query):
        match = Match.build(
            qmap(path_query),
            {0: edge(10, "a", "b", ts=1.0), 1: edge(11, "b", "c", ts=3.0)},
        )
        assert match is not None
        assert match.vertex_map == {0: "a", 1: "b", 2: "c"}
        assert match.min_time == 1.0 and match.max_time == 3.0
        assert match.span == 2.0
        assert match.num_edges == 2
        assert match.query_edge_ids() == frozenset({0, 1})

    def test_type_mismatch_rejected(self, path_query):
        assert Match.build(qmap(path_query), {0: edge(10, "a", "b", etype="X")}) is None

    def test_vertex_inconsistency_rejected(self, path_query):
        match = Match.build(
            qmap(path_query),
            {0: edge(10, "a", "b"), 1: edge(11, "z", "c")},  # v1 must be b
        )
        assert match is None

    def test_vertex_injectivity_enforced(self, path_query):
        match = Match.build(
            qmap(path_query),
            {0: edge(10, "a", "b"), 1: edge(11, "b", "a")},  # v2 == v0 image
        )
        assert match is None

    def test_data_edge_reuse_rejected(self):
        query = QueryGraph()
        query.add_edge(0, 1, "T")
        query.add_edge(0, 1, "T")  # parallel query edges
        shared = edge(10, "a", "b")
        assert Match.build(qmap(query), {0: shared, 1: shared}) is None

    def test_unknown_query_edge_rejected(self, path_query):
        assert Match.build(qmap(path_query), {9: edge(10, "a", "b")}) is None

    def test_single_fast_path(self, path_query):
        qedge = path_query.edge(0)
        match = Match.single(0, qedge, edge(5, "x", "y", ts=2.0))
        assert match.vertex_map == {0: "x", 1: "y"}
        assert match.span == 0.0

    def test_single_self_loop(self):
        query = QueryGraph()
        query.add_edge(0, 0, "T")
        match = Match.single(0, query.edge(0), edge(5, "x", "x"))
        assert match.vertex_map == {0: "x"}


class TestJoin:
    def test_compatible_join(self, path_query):
        m1 = Match.build(qmap(path_query), {0: edge(10, "a", "b", ts=1.0)})
        m2 = Match.build(qmap(path_query), {1: edge(11, "b", "c", ts=5.0)})
        joined = m1.join(m2)
        assert joined is not None
        assert joined.vertex_map == {0: "a", 1: "b", 2: "c"}
        assert joined.span == 4.0
        assert joined.query_edge_ids() == frozenset({0, 1})

    def test_join_is_symmetric(self, path_query):
        m1 = Match.build(qmap(path_query), {0: edge(10, "a", "b")})
        m2 = Match.build(qmap(path_query), {1: edge(11, "b", "c")})
        assert m1.join(m2) == m2.join(m1)

    def test_overlapping_query_edges_rejected(self, path_query):
        m1 = Match.build(qmap(path_query), {0: edge(10, "a", "b")})
        m2 = Match.build(qmap(path_query), {0: edge(11, "x", "y")})
        assert m1.join(m2) is None

    def test_inconsistent_shared_vertex_rejected(self, path_query):
        m1 = Match.build(qmap(path_query), {0: edge(10, "a", "b")})
        m2 = Match.build(qmap(path_query), {1: edge(11, "z", "c")})
        assert m1.join(m2) is None

    def test_injectivity_across_join_rejected(self, path_query):
        m1 = Match.build(qmap(path_query), {0: edge(10, "a", "b")})
        m2 = Match.build(qmap(path_query), {2: edge(11, "c", "a")})  # v3 -> a
        assert m1.join(m2) is None

    def test_shared_data_edge_rejected(self):
        query = QueryGraph()
        query.add_edge(0, 1, "T")
        query.add_edge(1, 2, "T")
        shared = edge(10, "a", "b")
        m1 = Match.build(qmap(query), {0: shared})
        m2 = Match.build(qmap(query), {1: edge(10, "b", "c")})  # same edge id
        assert m1.join(m2) is None

    def test_merge_all(self, path_query):
        parts = [
            Match.build(qmap(path_query), {0: edge(10, "a", "b")}),
            Match.build(qmap(path_query), {1: edge(11, "b", "c")}),
            Match.build(qmap(path_query), {2: edge(12, "c", "d")}),
        ]
        combined = merge_all(parts)
        assert combined is not None
        assert combined.num_edges == 3

    def test_merge_all_conflict_returns_none(self, path_query):
        parts = [
            Match.build(qmap(path_query), {0: edge(10, "a", "b")}),
            Match.build(qmap(path_query), {1: edge(11, "q", "c")}),
        ]
        assert merge_all(parts) is None


class TestIdentity:
    def test_fingerprint_and_equality(self, path_query):
        m1 = Match.build(qmap(path_query), {0: edge(10, "a", "b")})
        m2 = Match.build(qmap(path_query), {0: edge(10, "a", "b")})
        m3 = Match.build(qmap(path_query), {0: edge(11, "a", "b")})
        assert m1 == m2
        assert hash(m1) == hash(m2)
        assert m1 != m3
        assert m1.fingerprint == ((0, 10),)

    def test_key_for_cut(self, path_query):
        match = Match.build(
            qmap(path_query), {0: edge(10, "a", "b"), 1: edge(11, "b", "c")}
        )
        assert match.key_for((1,)) == ("b",)
        assert match.key_for((0, 2)) == ("a", "c")
        assert match.key_for(()) == ()

    def test_data_accessors(self, path_query):
        match = Match.build(qmap(path_query), {0: edge(10, "a", "b")})
        assert match.data_vertices() == {"a", "b"}
        assert [e.edge_id for e in match.data_edges()] == [10]
