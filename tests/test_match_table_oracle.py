"""Property tests for the slab-backed MatchTable against the seed-era
dict-of-dicts + heapq implementation as a semantic oracle.

The slab table (``repro.sjtree.node.MatchTable``) must preserve every
observable behaviour the SJ-Tree relies on:

* insert return values (duplicate suppression) and ``inserted_total``;
* probe *content and order* under any interleaving of inserts and
  expiry — probe order must equal insertion order (record-identity of
  the sharded runtime depends on it, because workers expire at different
  stream positions than the single-process engine);
* expiry semantics up to the documented relaxation: the slab ring is
  amortized-lazy, so an expired entry inserted before a still-live one
  may linger until its predecessor expires — but it must stay invisible
  to cutoff-filtered probes (exactly how ``UPDATE-SJ-TREE`` consumes
  probes), and must be reclaimed no later than the full drain.

On a monotone-min_time insert sequence (every leaf table: min_time is the
edge timestamp, and stream timestamps never decrease) the slab table is
*exactly* equivalent, including ``len`` and per-call expire counts.

The second half re-runs the engine-level equivalence property for the
slab encoding on the benchmark's mixed-edge-type 10-query workload with a
tight window, so expiry, tombstoning, bucket compaction and the compiled
join plans are all exercised against the seed configuration
record-for-record.
"""

import heapq
import math
import random

import pytest

from repro import ContinuousQueryEngine
from repro.analysis.experiments import mixed_etype_workload
from repro.graph.types import Edge
from repro.isomorphism import Match
from repro.query import QueryGraph
from repro.sjtree.node import MatchTable


class OracleMatchTable:
    """The seed implementation: dict-of-dict buckets + heapq expiry.

    Copied (minus the Match internals it predates) so the slab rewrite is
    tested against real executable semantics, not prose.
    """

    def __init__(self) -> None:
        self._buckets = {}
        self._seen = {}
        self._heap = []
        self._entries = {}
        self._next_uid = 0
        self.inserted_total = 0

    def insert(self, key, match) -> bool:
        fingerprint = match.fingerprint
        if fingerprint in self._seen:
            return False
        uid = self._next_uid
        self._next_uid += 1
        self._seen[fingerprint] = uid
        self._entries[uid] = (key, match)
        self._buckets.setdefault(key, {})[uid] = match
        heapq.heappush(self._heap, (match.min_time, uid))
        self.inserted_total += 1
        return True

    def probe(self, key):
        bucket = self._buckets.get(key)
        if not bucket:
            return []
        return list(bucket.values())

    def expire(self, cutoff: float) -> int:
        dropped = 0
        while self._heap and self._heap[0][0] < cutoff:
            _, uid = heapq.heappop(self._heap)
            entry = self._entries.pop(uid, None)
            if entry is None:
                continue
            key, match = entry
            bucket = self._buckets.get(key)
            if bucket is not None:
                bucket.pop(uid, None)
                if not bucket:
                    del self._buckets[key]
            self._seen.pop(match.fingerprint, None)
            dropped += 1
        return dropped

    def __len__(self) -> int:
        return len(self._entries)


QUERY = QueryGraph.path(["T"])
QMAP = QUERY.edges_by_id()


def make_match(edge_id: int, ts: float, key_seed: int) -> Match:
    match = Match.build(
        QMAP, {0: Edge(edge_id, f"u{key_seed}", f"v{key_seed}", "T", ts)}
    )
    assert match is not None
    return match


def filtered(probe_result, cutoff: float):
    """A probe as UPDATE-SJ-TREE consumes it: cutoff-filtered, in order."""
    return [m.fingerprint for m in probe_result if m.min_time >= cutoff]


def drive(seed: int, monotone: bool, steps: int = 400):
    """Random insert/probe/expire trace, slab vs oracle.

    Inserts model exactly what ``SJTree.insert_match`` feeds a table: a
    match is only offered when ``min_time >= cutoff`` (the tree rejects
    stale matches before they reach the table), min_times are monotone
    for leaf tables and boundedly out-of-order for join tables, and Lazy
    Search may re-offer a still-live match (the dedupe path).
    """
    rng = random.Random(seed)
    slab = MatchTable()
    oracle = OracleMatchTable()
    keys = [(f"k{i}",) for i in range(6)]
    stamp_of = {}
    key_of = {}
    clock = 0.0
    cutoff = -math.inf
    next_edge_id = 0
    slab_total_dropped = 0
    oracle_total_dropped = 0

    for _ in range(steps):
        op = rng.random()
        if op < 0.55:
            clock += rng.random()
            edge_id = None
            if rng.random() < 0.15 and next_edge_id:
                # re-offer an earlier match (Lazy rediscovery: dedupe
                # path) — only if still inside the window, as the tree's
                # min_time guard would enforce
                candidate = rng.randrange(next_edge_id)
                if stamp_of[candidate] >= cutoff:
                    edge_id = candidate
            if edge_id is None:
                if monotone:
                    ts = clock
                else:
                    # bounded out-of-orderness: min_time lags the clock,
                    # like joins against old partners, but never below
                    # the cutoff (the tree rejects those pre-insert)
                    ts = max(clock - rng.random() * 10.0, cutoff)
                edge_id = next_edge_id
                next_edge_id += 1
                key_of[edge_id] = rng.randrange(len(keys))
                stamp_of[edge_id] = ts
            match = make_match(edge_id, stamp_of[edge_id], key_of[edge_id])
            key = keys[key_of[edge_id]]
            assert slab.insert(key, match) == oracle.insert(key, match)
            assert slab.inserted_total == oracle.inserted_total
        elif op < 0.85:
            key = keys[rng.randrange(len(keys))]
            got = filtered(slab.probe(key), cutoff)
            want = filtered(oracle.probe(key), cutoff)
            assert got == want, (key, got, want)
        else:
            cutoff = max(cutoff, clock - rng.random() * 12.0)
            slab_total_dropped += slab.expire(cutoff)
            oracle_total_dropped += oracle.expire(cutoff)
            if monotone:
                assert slab_total_dropped == oracle_total_dropped
                assert len(slab) == len(oracle)
            else:
                # lazy ring: the slab may defer reclaiming entries shadowed
                # by a live ring head (catching up on a later call), so it
                # can only ever lag the eager oracle, never lead it
                assert slab_total_dropped <= oracle_total_dropped
                assert len(slab) >= len(oracle)

    # Full drain: everything expires; laziness must not leak anything.
    final = clock + 100.0
    slab.expire(final)
    oracle.expire(final)
    assert len(slab) == len(oracle) == 0
    for key in keys:
        assert slab.probe(key) == []


@pytest.mark.parametrize("seed", range(8))
def test_slab_matches_oracle_monotone(seed):
    drive(seed, monotone=True)


@pytest.mark.parametrize("seed", range(8))
def test_slab_matches_oracle_out_of_order(seed):
    drive(seed + 1000, monotone=False)


class TestSlabDetails:
    def test_probe_returns_live_list_and_copy_on_write(self):
        """The zero-copy probe snapshots only when mutated afterwards."""
        table = MatchTable()
        m1 = make_match(0, 1.0, 0)
        m2 = make_match(1, 2.0, 0)
        table.insert(("k0",), m1)
        view = table.probe(("k0",))
        assert view == [m1]
        table.insert(("k0",), m2)  # mutation after probe: must not be seen
        assert view == [m1]
        assert table.probe(("k0",)) == [m1, m2]

    def test_probe_order_is_insertion_order_across_expiry(self):
        """Tombstoning must never reorder survivors (sharded identity)."""
        table = MatchTable()
        matches = [make_match(i, float(i), 0) for i in range(6)]
        for m in matches:
            table.insert(("k0",), m)
        table.expire(2.0)  # drops ids 0, 1
        assert [m.fingerprint for m in table.probe(("k0",))] == [
            m.fingerprint for m in matches[2:]
        ]

    def test_infinite_window_tables_skip_expiry_bookkeeping(self):
        table = MatchTable(track_expiry=False)
        for i in range(5):
            table.insert((), make_match(i, float(i), 0))
        assert len(table._ring) == 0  # no per-insert expiry state at all
        assert table.expire(100.0) == 0  # nothing tracked, nothing dropped
        assert len(table) == 5

    def test_engine_infinite_window_disables_tracking(self):
        from repro.analysis.experiments import mixed_etype_queries

        engine = ContinuousQueryEngine(window=math.inf)
        engine.warmup(mixed_etype_workload(200, num_queries=1)[0])
        query = mixed_etype_queries(1)[0]
        registered = engine.register(query, strategy="Single")
        assert all(
            not node.table.track_expiry
            for node in registered.algorithm.tree.nodes
        )
        finite = ContinuousQueryEngine(window=10.0)
        finite.warmup(mixed_etype_workload(200, num_queries=1)[0])
        registered = finite.register(query, strategy="Single")
        assert all(node.table.track_expiry for node in registered.algorithm.tree.nodes)


# ---------------------------------------------------------------------------
# engine-level equivalence of the slab encoding on the bench workload
# ---------------------------------------------------------------------------


def run_mixed(fast: bool, strategy: str, window: float, events: int = 2500):
    stream, queries = mixed_etype_workload(events)
    warm_n = events // 5
    engine = ContinuousQueryEngine(window=window, dispatch=fast, housekeeping_every=64)
    engine.warmup(stream[:warm_n])
    for query in queries:
        options = {} if fast else {"compiled_plans": False}
        engine.register(query, strategy=strategy, name=query.name, **options)
    records = engine.process_events(stream[warm_n:])
    return [(r.query_name, r.match.fingerprint, r.completed_at) for r in records]


@pytest.mark.parametrize("strategy", ["Single", "SingleLazy"])
def test_slab_encoding_equivalence_mixed_workload(strategy):
    """Fast path == seed path, record for record, on the benchmark's
    mixed-etype 10-query workload under a tight window.

    The tight window plus a short housekeeping cadence hammers the slab
    machinery — ring expiry, tombstones, bucket compaction, copy-on-write
    probes — while the Lazy variant adds hook-driven re-entrant inserts
    during probe iteration (the snapshot-on-mutation case).
    """
    fast = run_mixed(True, strategy, window=15.0)
    seed = run_mixed(False, strategy, window=15.0)
    assert fast == seed
    assert fast  # the workload must actually produce matches
