"""Record-identity guard: armed telemetry must be invisible.

A run that collects metric snapshots mid-stream (and/or keeps phase
profiling on) must emit records identical — query, fingerprint,
timestamp — to a run that never touches telemetry.  This is the
observability analogue of the checkpoint/resume equivalence bar: pull
collection reads engine state, it must never perturb it.
"""

from __future__ import annotations

import pytest

from repro import ContinuousQueryEngine, ShardedEngine
from repro.analysis.experiments import mixed_etype_workload

COLLECT_CUTS = (150, 300, 450)


def identities(records):
    return [(r.query_name, r.match.fingerprint, r.completed_at) for r in records]


@pytest.fixture(scope="module")
def workload():
    events, queries = mixed_etype_workload(
        600, num_queries=6, num_etypes=16, seed=13, population=48
    )
    for i, query in enumerate(queries):
        query.name = f"q{i}"
    return events, queries


def _single_run(workload, *, collect, profile=False):
    events, queries = workload
    engine = ContinuousQueryEngine(window=80.0, profile_phases=profile)
    engine.warmup(events[:100])
    for query in queries:
        engine.register(query, strategy="auto")
    records = []
    start = 0
    for cut in COLLECT_CUTS + (len(events),):
        records.extend(engine.run(events[start:cut]).records)
        start = cut
        if collect:
            snapshot = engine.metrics().collect()
            assert snapshot["repro_engine_edges_ingested_total"]["samples"]
    return identities(records)


def _sharded_run(workload, workers, *, collect, profile=False):
    events, queries = workload
    engine = ShardedEngine(
        window=80.0, workers=workers, batch_size=64, profile_phases=profile
    )
    try:
        engine.warmup(events[:100])
        for query in queries:
            engine.register(query, strategy="auto")
        records = []
        start = 0
        for cut in COLLECT_CUTS + (len(events),):
            records.extend(engine.run(events[start:cut]).records)
            start = cut
            if collect:
                snapshot = engine.metrics().collect()
                assert snapshot["repro_runtime_workers"]["samples"]
        return identities(records)
    finally:
        engine.close()


def test_single_process_records_unchanged_by_collection(workload):
    baseline = _single_run(workload, collect=False)
    assert baseline, "workload must produce matches to be meaningful"
    assert _single_run(workload, collect=True) == baseline
    assert _single_run(workload, collect=True, profile=True) == baseline


@pytest.mark.parametrize("workers", [1, 2])
def test_sharded_records_unchanged_by_collection(workload, workers):
    baseline = _sharded_run(workload, workers, collect=False)
    assert baseline, "workload must produce matches to be meaningful"
    assert _sharded_run(workload, workers, collect=True) == baseline
    assert _sharded_run(workload, workers, collect=True, profile=True) == baseline


def test_sharded_matches_single_with_collection(workload):
    """Cross-runtime: collected sharded run == uncollected single run."""
    single = set(_single_run(workload, collect=False))
    sharded = set(_sharded_run(workload, 2, collect=True))
    assert sharded == single
