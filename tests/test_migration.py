"""Shard-layout migration ground truth: checkpoints are layout-independent.

The keystone mirrors ``tests/test_persistence.py``'s kill/resume bar: a
checkpoint taken at N workers and resumed at any M >= 1 — different
worker count, different partitioner, even the single-process engine —
must emit records byte-identical to a run that was never interrupted.
Alongside it: online ``rebalance`` mid-stream, single-mode checkpoints
migrating onto the sharded runtime, version-1 snapshot/manifest
readability, the manifest v2 per-query slice index, and the
split/merge/compose primitives behind all of it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro import CheckpointError, ContinuousQueryEngine, ShardedEngine
from repro.analysis.experiments import mixed_etype_workload
from repro.persistence import manifest as manifest_mod
from repro.persistence.binary import BinaryWriter
from repro.persistence.migrate import live_estimator, migrate_checkpoint
from repro.persistence.snapshot import (
    SNAPSHOT_MAGIC,
    _dump_engine_config,
    _dump_graph_state,
    _Interner,
    compose_snapshot,
    engine_from_bytes,
    engine_to_slices,
    read_snapshot_bytes,
    split_snapshot,
)
from repro.query.query_graph import QueryGraph

CUT_POINTS = (100, 350)
TARGET_WORKERS = (1, 3, 4)

#: strategy mix cycled over registered queries — covers the eager and
#: lazy SJ-Tree paths plus both stateful baselines (PeriodicVF2 also
#: pins an unfiltered shard, exercising the alphabet=None merge rule).
STRATEGY_CYCLE = ("Single", "SingleLazy", "VF2", "PeriodicVF2")


def identities(records):
    return [
        (r.query_name, r.strategy, r.match.fingerprint, r.completed_at)
        for r in records
    ]


@pytest.fixture(scope="module")
def workload():
    events, queries = mixed_etype_workload(
        700, num_queries=10, num_etypes=24, seed=11, population=48
    )
    for i, query in enumerate(queries):
        query.name = f"q{i}"
    return events, queries


def _options(i):
    return {"period": 37} if STRATEGY_CYCLE[i % 4] == "PeriodicVF2" else {}


def _single_engine(events, queries, width=30.0):
    engine = ContinuousQueryEngine(window=width, housekeeping_every=5)
    engine.warmup(events)
    for i, query in enumerate(queries):
        engine.register(
            query,
            strategy=STRATEGY_CYCLE[i % 4],
            name=query.name,
            **_options(i),
        )
    return engine


def _sharded_engine(events, queries, workers, width=30.0):
    engine = ShardedEngine(
        window=width, workers=workers, batch_size=64, housekeeping_every=5
    )
    engine.warmup(events)
    for i, query in enumerate(queries):
        engine.register(
            query,
            strategy=STRATEGY_CYCLE[i % 4],
            name=query.name,
            **_options(i),
        )
    return engine


@pytest.fixture(scope="module")
def full_run(workload):
    events, queries = workload
    records = identities(_single_engine(events, queries).run(events).records)
    assert records, "workload must produce matches to be meaningful"
    return records


# ---------------------------------------------------------------------------
# N -> M kill/resume equivalence (the acceptance bar)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("cut", CUT_POINTS)
@pytest.mark.parametrize("target", TARGET_WORKERS)
def test_n_to_m_kill_resume_equivalence(tmp_path, workload, full_run, cut, target):
    """workers=2 checkpoint resumed at M in {1, 3, 4} == uninterrupted run."""
    events, queries = workload
    directory = tmp_path / f"to{target}-cut{cut}"
    first = _sharded_engine(events, queries, workers=2)
    before = identities(first.run(events[:cut]).records)
    first.checkpoint(directory, cursor=cut)
    first.close()
    resumed = ShardedEngine.resume(directory, queries, workers=target)
    try:
        assert resumed.workers == target
        after = identities(resumed.run(events[cut:]).records)
    finally:
        resumed.close()
    assert before + after == full_run, f"2->{target} at cut {cut} diverged"


def test_migrated_directory_checkpoints_again(tmp_path, workload, full_run):
    """A resumed-at-M engine can itself checkpoint and resume at M'."""
    events, queries = workload
    directory = tmp_path / "chain"
    first = _sharded_engine(events, queries, workers=2)
    records = identities(first.run(events[:200]).records)
    first.checkpoint(directory, cursor=200)
    first.close()
    second = ShardedEngine.resume(directory, queries, workers=3)
    records += identities(second.run(events[200:400]).records)
    second.checkpoint(directory, cursor=400)
    second.close()
    third = ShardedEngine.resume(directory, queries, workers=1)
    try:
        records += identities(third.run(events[400:]).records)
    finally:
        third.close()
    assert records == full_run


def test_resume_same_count_skips_migration(tmp_path, workload):
    """Plain resume (no layout request) must not rewrite the directory."""
    events, queries = workload
    directory = tmp_path / "same"
    engine = _sharded_engine(events, queries, workers=2)
    engine.run(events[:200])
    engine.checkpoint(directory)
    engine.close()
    before = manifest_mod.read_manifest(directory)["sequence"]
    resumed = ShardedEngine.resume(directory, queries, workers=2)
    resumed.close()
    assert manifest_mod.read_manifest(directory)["sequence"] == before


# ---------------------------------------------------------------------------
# online rebalance
# ---------------------------------------------------------------------------


def test_rebalance_mid_stream_preserves_records(workload, full_run):
    """2 -> 3 -> 1 live re-cuts between runs emit the uninterrupted records."""
    events, queries = workload
    engine = _sharded_engine(events, queries, workers=2)
    try:
        records = identities(engine.run(events[:200]).records)
        manifest = engine.rebalance(workers=3)
        assert manifest["workers"] == 3
        assert engine.workers == 3
        records += identities(engine.run(events[200:450]).records)
        engine.rebalance(workers=1, partitioner="round-robin")
        records += identities(engine.run(events[450:]).records)
    finally:
        engine.close()
    assert records == full_run


def test_rebalance_kept_directory_is_resumable(tmp_path, workload, full_run):
    events, queries = workload
    directory = tmp_path / "kept"
    engine = _sharded_engine(events, queries, workers=2)
    records = identities(engine.run(events[:300]).records)
    engine.rebalance(workers=3, directory=directory, cursor=300)
    engine.close()  # the "kill": only the rebalance checkpoint survives
    assert manifest_mod.read_manifest(directory)["workers"] == 3
    resumed = ShardedEngine.resume(directory, queries)
    try:
        records += identities(resumed.run(events[300:]).records)
    finally:
        resumed.close()
    assert records == full_run


def test_rebalance_requires_started_engine(workload):
    events, queries = workload
    engine = _sharded_engine(events, queries, workers=2)
    with pytest.raises(CheckpointError, match="started"):
        engine.rebalance(workers=3)


# ---------------------------------------------------------------------------
# single-mode checkpoints migrate too
# ---------------------------------------------------------------------------


def test_single_mode_checkpoint_resumes_sharded(tmp_path, workload, full_run):
    events, queries = workload
    directory = tmp_path / "single"
    engine = _single_engine(events, queries)
    before = identities(engine.run(events[:300]).records)
    manifest_mod.write_single_checkpoint(directory, engine, sequence=1, cursor=300)
    resumed = ShardedEngine.resume(directory, queries, workers=3)
    try:
        after = identities(resumed.run(events[300:]).records)
    finally:
        resumed.close()
    assert before + after == full_run


def test_single_mode_without_layout_request_still_raises(tmp_path, workload):
    events, queries = workload
    directory = tmp_path / "single"
    engine = _single_engine(events, queries)
    engine.run(events[:100])
    manifest_mod.write_single_checkpoint(directory, engine, sequence=1, cursor=100)
    with pytest.raises(CheckpointError, match="single"):
        ShardedEngine.resume(directory, queries)


# ---------------------------------------------------------------------------
# split / merge / compose primitives
# ---------------------------------------------------------------------------


def test_split_compose_round_trip(workload, full_run):
    events, queries = workload
    engine = _single_engine(events, queries)
    before = identities(engine.run(events[:350]).records)
    slices = engine_to_slices(engine, cursor=350)
    reparsed = split_snapshot(compose_snapshot(slices))
    assert reparsed.cursor == 350
    assert reparsed.config == slices.config
    assert reparsed.graph == slices.graph
    assert reparsed.estimator == slices.estimator
    assert reparsed.queries == slices.queries
    restored, cursor = engine_from_bytes(compose_snapshot(reparsed), queries)
    assert cursor == 350
    after = identities(restored.run(events[350:]).records)
    assert before + after == full_run


def test_live_estimator_folds_in_window(workload):
    events, queries = workload
    engine = _single_engine(events, queries)
    engine.run(events[:400])
    slices = engine_to_slices(engine)
    estimator = live_estimator([slices])
    assert (
        estimator.events_observed
        == engine.estimator.events_observed + engine.graph.num_edges
    )


def test_migrate_validates_inputs(tmp_path, workload):
    events, queries = workload
    directory = tmp_path / "ck"
    engine = _sharded_engine(events, queries, workers=2)
    engine.run(events[:150])
    engine.checkpoint(directory)
    engine.close()
    with pytest.raises(CheckpointError, match="workers"):
        migrate_checkpoint(directory, queries, workers=0)
    with pytest.raises(CheckpointError, match="partitioner"):
        migrate_checkpoint(directory, queries, workers=2, partitioner="by-vibes")
    wrong = list(queries)
    wrong[0] = QueryGraph.path(["T0", "T9"], name=queries[0].name)
    with pytest.raises(CheckpointError, match="does not match"):
        migrate_checkpoint(directory, wrong, workers=3)
    with pytest.raises(CheckpointError, match="not provided"):
        migrate_checkpoint(directory, queries[1:], workers=3)


def test_migrate_out_leaves_source_untouched(tmp_path, workload, full_run):
    events, queries = workload
    src = tmp_path / "src"
    dst = tmp_path / "dst"
    engine = _sharded_engine(events, queries, workers=2)
    before = identities(engine.run(events[:350]).records)
    engine.checkpoint(src, cursor=350)
    engine.close()
    source_manifest = manifest_mod.read_manifest(src)
    migrate_checkpoint(src, queries, workers=3, out=dst)
    assert manifest_mod.read_manifest(src) == source_manifest
    resumed = ShardedEngine.resume(dst, queries)
    try:
        assert resumed.workers == 3
        after = identities(resumed.run(events[350:]).records)
    finally:
        resumed.close()
    assert before + after == full_run


# ---------------------------------------------------------------------------
# manifest v2 slice index
# ---------------------------------------------------------------------------


def test_manifest_records_per_query_slice_index(tmp_path, workload):
    events, queries = workload
    directory = tmp_path / "ck"
    engine = _sharded_engine(events, queries, workers=2)
    engine.run(events[:150])
    engine.checkpoint(directory)
    engine.close()
    manifest = manifest_mod.read_manifest(directory)
    assert manifest["version"] == 2
    placed = {
        position: shard["worker_id"]
        for shard in manifest["shards"]
        for position in shard["positions"]
    }
    for entry in manifest["queries"]:
        assert entry["shard"] == placed[entry["position"]]
    index = manifest_mod.query_shard_index(manifest)
    assert index == {entry["name"]: entry["shard"] for entry in manifest["queries"]}


# ---------------------------------------------------------------------------
# cross-process determinism (the resume paths depend on it)
# ---------------------------------------------------------------------------


_SEED_PROBE = """
import sys

from repro import ContinuousQueryEngine
from repro.datasets import NetflowGenerator
from repro.query.parser import parse_query

events = list(NetflowGenerator(num_events=4000, seed=3).events())
query = parse_query("a:ip -TCP-> b:ip\\nb:ip -ICMP-> c:ip\\n")
query.name = "q"
engine = ContinuousQueryEngine(window=20.0)
engine.warmup(events[:1000])
engine.register(query, strategy="SingleLazy", name="q")
for record in engine.run(events[1000:]).records:
    sys.stdout.write(f"{record.match.fingerprint}@{record.completed_at}\\n")
"""


def test_emission_order_is_hash_seed_independent():
    """Identical streams must emit identical record *order* in any process.

    Regression for the shard-migration audit's nastiest find: Lazy
    Search's retrospective backfill iterated ``Match.data_vertices()`` —
    a set of vertex ids, whose iteration order depends on the
    interpreter's hash seed. Retro matches are inserted per vertex, so
    probe (and emission) order varied *across processes* even on
    identical input: a kill/resume or N->M migration could reorder
    same-timestamp records relative to the uninterrupted run. The
    netflow hub pattern below reliably exposes it (seed 3 vs 1 diverged
    on the unfixed code).
    """
    import subprocess
    import sys

    outputs = {}
    for seed in ("1", "2", "3", "4242"):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = seed
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        result = subprocess.run(
            [sys.executable, "-c", _SEED_PROBE],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout, "probe produced no records"
        outputs[seed] = result.stdout
    assert len(set(outputs.values())) == 1, (
        "emission order depends on the interpreter hash seed: "
        + ", ".join(
            f"seed {seed}: {len(out.splitlines())} records"
            for seed, out in outputs.items()
        )
    )


# ---------------------------------------------------------------------------
# version-1 compatibility (snapshots and manifests)
# ---------------------------------------------------------------------------


def _compose_v1(slices) -> bytes:
    """Re-encode slices in the version-1 (PR 4) inline snapshot layout."""
    etypes = _Interner()
    vtypes = _Interner()
    config = BinaryWriter()
    _dump_engine_config(config, slices.config)
    graph = BinaryWriter()
    _dump_graph_state(graph, slices.graph, etypes, vtypes)
    writer = BinaryWriter()
    writer.write_bytes_raw(SNAPSHOT_MAGIC)
    writer.write_varint(1)
    writer.write_value(slices.cursor)
    writer.write_varint(len(etypes.names))
    for name in etypes.names:
        writer.write_str(name)
    writer.write_varint(len(vtypes.names))
    for name in vtypes.names:
        writer.write_str(name)
    writer.write_bytes_raw(config.getvalue())
    writer.write_bytes_raw(graph.getvalue())
    writer.write_bytes_raw(slices.estimator)
    writer.write_varint(len(slices.queries))
    for name, blob in slices.queries.items():
        writer.write_str(name)
        writer.write_bytes_raw(blob)
    return writer.getvalue()


def _downgrade_checkpoint(directory) -> None:
    """Rewrite a checkpoint directory in the version-1 on-disk formats."""
    manifest_path = directory / manifest_mod.MANIFEST_NAME
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    manifest["version"] = 1
    for entry in manifest["queries"]:
        entry.pop("shard", None)
    for shard in manifest["shards"]:
        path = directory / shard["file"]
        # read_snapshot_bytes strips the CRC trailer modern files carry;
        # the rewritten v1 file is bare, as v1-era files were.
        path.write_bytes(_compose_v1(split_snapshot(read_snapshot_bytes(path))))
    manifest_path.write_text(json.dumps(manifest), encoding="utf-8")


def test_v1_snapshot_still_restores(workload, full_run):
    events, queries = workload
    engine = _single_engine(events, queries)
    before = identities(engine.run(events[:350]).records)
    v1 = _compose_v1(engine_to_slices(engine, cursor=350))
    restored, cursor = engine_from_bytes(v1, queries)
    assert cursor == 350
    after = identities(restored.run(events[350:]).records)
    assert before + after == full_run


def test_v1_snapshot_splits_via_redump(workload):
    events, queries = workload
    engine = _single_engine(events, queries)
    engine.run(events[:200])
    slices = engine_to_slices(engine, cursor=200)
    v1 = _compose_v1(slices)
    with pytest.raises(CheckpointError, match="version-1"):
        split_snapshot(v1)  # needs the query set for the redump pass
    reparsed = split_snapshot(v1, queries)
    assert reparsed.graph == slices.graph
    assert reparsed.queries == slices.queries


def test_v1_checkpoint_directory_migrates(tmp_path, workload, full_run):
    """A PR-4 era directory (manifest v1 + snapshot v1) resumes at M=3."""
    events, queries = workload
    directory = tmp_path / "v1"
    engine = _sharded_engine(events, queries, workers=2)
    before = identities(engine.run(events[:350]).records)
    engine.checkpoint(directory, cursor=350)
    engine.close()
    _downgrade_checkpoint(directory)
    assert manifest_mod.read_manifest(directory)["version"] == 1
    resumed = ShardedEngine.resume(directory, queries, workers=3)
    try:
        after = identities(resumed.run(events[350:]).records)
    finally:
        resumed.close()
    assert before + after == full_run
    assert manifest_mod.read_manifest(directory)["version"] == 2
