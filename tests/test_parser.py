"""Unit tests for the query text formats."""

import pytest

from repro.errors import ParseError
from repro.query import QueryGraph, format_query, parse_query, parse_triples


class TestParseQuery:
    def test_basic_edge_line(self):
        query = parse_query("a -TCP-> b")
        assert query.num_edges == 1
        assert query.edges[0].etype == "TCP"

    def test_vertex_types(self):
        query = parse_query("a:ip -TCP-> b:host")
        assert query.vertex_type(0) == "ip"
        assert query.vertex_type(1) == "host"

    def test_vertex_names_are_reused(self):
        query = parse_query("a -T-> b\nb -U-> c")
        assert query.num_vertices == 3
        assert query.edges[1].src == 1

    def test_type_on_any_mention(self):
        query = parse_query("a -T-> b\nb:ip -U-> c")
        assert query.vertex_type(1) == "ip"

    def test_comments_and_blanks(self):
        query = parse_query("# header\n\na -T-> b  # trailing\n")
        assert query.num_edges == 1

    def test_binding_line(self):
        query = parse_query('a -T-> b\na = "10.0.0.1"')
        assert query.binding(0) == "10.0.0.1"

    def test_rejects_garbage(self):
        with pytest.raises(ParseError, match="line 1"):
            parse_query("a => b")

    def test_rejects_empty_query(self):
        with pytest.raises(ParseError, match="no edges"):
            parse_query("# nothing\n")

    def test_dotted_names(self):
        query = parse_query("web.server -HTTP-> app-01")
        assert query.num_edges == 1


class TestFormatRoundTrip:
    def test_round_trip_preserves_structure(self):
        original = QueryGraph.path(["ESP", "TCP"], vtype="ip")
        original.add_vertex(0, binding="ip3")
        parsed = parse_query(format_query(original))
        assert parsed.num_edges == original.num_edges
        assert [e.etype for e in parsed.edges] == ["ESP", "TCP"]
        assert parsed.vertex_type(0) == "ip"
        assert parsed.binding(0) == "ip3"

    def test_round_trip_wildcards(self):
        original = QueryGraph.path(["A", "B", "C"])
        parsed = parse_query(format_query(original))
        assert all(parsed.vertex_type(v) is None for v in parsed.vertices())


class TestParseTriples:
    def test_triples(self):
        query = parse_triples("0 TCP 1\n1 ICMP 2\n")
        assert query.num_edges == 2
        assert query.edges[1].etype == "ICMP"

    def test_bad_arity(self):
        with pytest.raises(ParseError, match="expected"):
            parse_triples("0 TCP\n")

    def test_non_integer_vertices(self):
        with pytest.raises(ParseError, match="integers"):
            parse_triples("a TCP b\n")

    def test_empty(self):
        with pytest.raises(ParseError):
            parse_triples("# only comments\n")
