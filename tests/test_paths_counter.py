"""Unit tests for Algorithm 5 and the streaming 2-edge path counter."""

from collections import Counter

import pytest

from repro.graph import IN, OUT
from repro.query import QueryGraph
from repro.stats import (
    TwoEdgePathCounter,
    count_two_edge_paths,
    fragment_signature,
    make_signature,
    make_token,
    query_path_signatures,
)

from .util import graph_from_tuples


def sig(d1, t1, d2, t2):
    return make_signature(make_token(d1, t1), make_token(d2, t2))


class TestTokens:
    def test_make_token_validates_direction(self):
        with pytest.raises(ValueError):
            make_token("sideways", "T")

    def test_signature_is_order_independent(self):
        a = make_token(OUT, "T")
        b = make_token(IN, "U")
        assert make_signature(a, b) == make_signature(b, a)


class TestBatchAlgorithm5:
    def test_single_path(self):
        graph = graph_from_tuples([("a", "b", "T"), ("b", "c", "U")])
        counts = count_two_edge_paths(graph)
        assert counts == Counter({sig(IN, "T", OUT, "U"): 1})

    def test_same_type_pairs_use_binomial(self):
        # three U edges leaving b: C(3,2) = 3 paths centred at b
        graph = graph_from_tuples([("b", "c", "U"), ("b", "d", "U"), ("b", "e", "U")])
        counts = count_two_edge_paths(graph)
        assert counts[sig(OUT, "U", OUT, "U")] == 3

    def test_cross_type_pairs_multiply(self):
        graph = graph_from_tuples(
            [("b", "c", "U"), ("b", "d", "U"), ("a", "b", "T"), ("x", "b", "T")]
        )
        counts = count_two_edge_paths(graph)
        assert counts[sig(IN, "T", OUT, "U")] == 4
        assert counts[sig(IN, "T", IN, "T")] == 1
        assert counts[sig(OUT, "U", OUT, "U")] == 1

    def test_both_endpoints_contribute(self):
        # parallel edges a->b: a 2-edge path at centre a AND at centre b
        graph = graph_from_tuples([("a", "b", "T"), ("a", "b", "T")])
        counts = count_two_edge_paths(graph)
        assert counts[sig(OUT, "T", OUT, "T")] == 1
        assert counts[sig(IN, "T", IN, "T")] == 1

    def test_custom_map_function(self):
        graph = graph_from_tuples([("a", "b", "T"), ("b", "c", "U")])
        counts = count_two_edge_paths(graph, map_edge=lambda e, c: "any")
        assert counts == Counter({sig(IN, "any", OUT, "any"): 1})

    def test_empty_graph(self):
        graph = graph_from_tuples([])
        assert count_two_edge_paths(graph) == Counter()


class TestStreamingCounter:
    def test_matches_batch_on_growth(self):
        rows = [
            ("a", "b", "T"),
            ("b", "c", "U"),
            ("c", "a", "T"),
            ("b", "d", "U"),
            ("a", "b", "T"),
        ]
        graph = graph_from_tuples([])
        counter = TwoEdgePathCounter()
        streamed = graph_from_tuples(rows)
        for edge in streamed.edges():
            counter.add_edge(edge)
        assert counter.as_counter() == count_two_edge_paths(streamed)
        assert counter.total == sum(count_two_edge_paths(streamed).values())

    def test_removal_reverses_addition(self):
        rows = [("a", "b", "T"), ("b", "c", "U"), ("c", "a", "T")]
        graph = graph_from_tuples(rows)
        counter = TwoEdgePathCounter()
        edges = list(graph.edges())
        for edge in edges:
            counter.add_edge(edge)
        for edge in edges:
            counter.remove_edge(edge)
        assert counter.total == 0
        assert len(counter) == 0

    def test_partial_removal_stays_consistent(self):
        rows = [("a", "b", "T"), ("b", "c", "U"), ("a", "c", "T"), ("c", "d", "U")]
        full = graph_from_tuples(rows)
        counter = TwoEdgePathCounter()
        edges = list(full.edges())
        for edge in edges:
            counter.add_edge(edge)
        counter.remove_edge(edges[1])
        remaining = graph_from_tuples([rows[0], rows[2], rows[3]])
        assert counter.as_counter() == count_two_edge_paths(remaining)

    def test_remove_unknown_token_raises(self):
        counter = TwoEdgePathCounter()
        graph = graph_from_tuples([("a", "b", "T")])
        with pytest.raises(ValueError):
            counter.remove_edge(next(graph.edges()))

    def test_selectivity_and_seen(self):
        counter = TwoEdgePathCounter()
        graph = graph_from_tuples([("a", "b", "T"), ("b", "c", "U"), ("b", "d", "U")])
        for edge in graph.edges():
            counter.add_edge(edge)
        s = sig(IN, "T", OUT, "U")
        assert counter.seen(s)
        assert counter.count(s) == 2
        assert counter.selectivity(s) == pytest.approx(2 / 3)
        assert not counter.seen(sig(IN, "X", OUT, "X"))
        assert counter.selectivity(sig(IN, "X", OUT, "X")) == 0.0

    def test_distribution_ascending(self):
        counter = TwoEdgePathCounter()
        graph = graph_from_tuples(
            [("a", "b", "T"), ("b", "c", "U"), ("b", "d", "U"), ("b", "e", "U")]
        )
        for edge in graph.edges():
            counter.add_edge(edge)
        dist = counter.distribution()
        counts = [c for _, c in dist]
        assert counts == sorted(counts)

    def test_self_loop_single_token(self):
        graph = graph_from_tuples([("a", "a", "T"), ("a", "b", "U")])
        counter = TwoEdgePathCounter()
        for edge in graph.edges():
            counter.add_edge(edge)
        assert counter.as_counter() == count_two_edge_paths(graph)


class TestQuerySignatures:
    def test_path_query_signatures(self):
        query = QueryGraph.path(["T", "U"])
        assert query_path_signatures(query) == [sig(IN, "T", OUT, "U")]

    def test_star_query_signatures(self):
        query = QueryGraph.from_triples([(0, "T", 1), (0, "U", 2), (0, "V", 3)])
        found = set(query_path_signatures(query))
        assert found == {
            sig(OUT, "T", OUT, "U"),
            sig(OUT, "T", OUT, "V"),
            sig(OUT, "U", OUT, "V"),
        }

    def test_single_edge_has_none(self):
        assert query_path_signatures(QueryGraph.path(["T"])) == []


class TestFragmentSignature:
    def test_two_edge_path_fragment(self):
        query = QueryGraph.path(["T", "U"])
        assert fragment_signature(query) == sig(IN, "T", OUT, "U")

    def test_one_edge_fragment_is_none(self):
        assert fragment_signature(QueryGraph.path(["T"])) is None

    def test_disjoint_edges_is_none(self):
        query = QueryGraph()
        query.add_edge(0, 1, "T")
        query.add_edge(2, 3, "U")
        assert fragment_signature(query) is None
