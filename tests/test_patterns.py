"""Unit tests for the Fig. 1 attack-pattern library."""

import pytest

from repro.query import (
    denial_of_service,
    information_exfiltration,
    insider_infiltration,
)
from repro.query.patterns import ALL_PATTERNS


class TestInfiltration:
    def test_is_a_path(self):
        query = insider_infiltration(hops=3)
        assert query.num_edges == 3
        assert query.num_vertices == 4
        assert all(e.etype == "RDP" for e in query.edges)
        assert query.diameter() == 3

    def test_vertex_type(self):
        query = insider_infiltration(hops=2, vtype="machine")
        assert query.vertex_type(0) == "machine"

    def test_rejects_zero_hops(self):
        with pytest.raises(ValueError):
            insider_infiltration(hops=0)


class TestDoS:
    def test_parallel_paths(self):
        query = denial_of_service(num_bots=3)
        assert query.num_edges == 6
        assert query.num_vertices == 5
        # every bot has one in-edge (from attacker) and one out-edge (to victim)
        for bot in (2, 3, 4):
            assert query.degree(bot) == 2
        assert query.degree(0) == 3  # attacker fan-out
        assert query.degree(1) == 3  # victim fan-in

    def test_connected(self):
        assert denial_of_service(num_bots=2).is_connected()

    def test_rejects_zero_bots(self):
        with pytest.raises(ValueError):
            denial_of_service(num_bots=0)

    def test_custom_protocols(self):
        query = denial_of_service(num_bots=2, c2_etype="TCP", flood_etype="ICMP")
        etypes = sorted(e.etype for e in query.edges)
        assert etypes == ["ICMP", "ICMP", "TCP", "TCP"]
        # flood edges all point at the victim
        assert all(e.dst == 1 for e in query.edges if e.etype == "ICMP")


class TestExfiltration:
    def test_shape(self):
        query = information_exfiltration()
        assert query.num_edges == 3
        assert query.num_vertices == 3
        etypes = sorted(e.etype for e in query.edges)
        assert etypes == ["HTTP", "LARGE_MSG", "TCP"]

    def test_victim_is_the_hub(self):
        query = information_exfiltration()
        assert all(e.src == 0 for e in query.edges)

    def test_parallel_edges_to_c2(self):
        query = information_exfiltration()
        to_c2 = [e for e in query.edges if e.dst == 2]
        assert len(to_c2) == 2


def test_registry_contains_all_three():
    assert set(ALL_PATTERNS) == {"infiltration", "dos", "exfiltration"}
    for factory in ALL_PATTERNS.values():
        assert factory().num_edges >= 1
