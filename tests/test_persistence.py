"""Durability ground truth: checkpoint/restore must be invisible.

The keystone is kill/resume equivalence — a run checkpointed at any cut
point and resumed in a *fresh* engine (and, for the sharded runtime,
fresh worker processes) must emit records byte-identical to a run that
was never interrupted. Alongside it: binary codec round-trips, snapshot
versioning/corruption errors (always a clear
:class:`~repro.errors.CheckpointError`, never a stray traceback), and
query-set validation.
"""

from __future__ import annotations

import math

import pytest

from repro import CheckpointError, ContinuousQueryEngine, ShardedEngine
from repro.analysis.experiments import mixed_etype_workload
from repro.persistence import load_engine, read_manifest, write_manifest
from repro.persistence.binary import BinaryReader, BinaryWriter
from repro.persistence.snapshot import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    engine_from_bytes,
    engine_to_bytes,
)
from repro.query.query_graph import QueryGraph

CUT_POINTS = (100, 350, 600)

#: strategy mix cycled over registered queries — covers the eager and
#: lazy SJ-Tree paths plus both stateful baselines.
STRATEGY_CYCLE = ("Single", "SingleLazy", "VF2", "PeriodicVF2")


def identities(records):
    return [
        (r.query_name, r.strategy, r.match.fingerprint, r.completed_at)
        for r in records
    ]


@pytest.fixture(scope="module")
def workload():
    events, queries = mixed_etype_workload(
        700, num_queries=10, num_etypes=24, seed=11, population=48
    )
    for i, query in enumerate(queries):
        query.name = f"q{i}"
    return events, queries


def _options(i):
    return {"period": 37} if STRATEGY_CYCLE[i % 4] == "PeriodicVF2" else {}


def _single_engine(events, queries, width):
    engine = ContinuousQueryEngine(window=width, housekeeping_every=5)
    engine.warmup(events)
    for i, query in enumerate(queries):
        engine.register(
            query,
            strategy=STRATEGY_CYCLE[i % 4],
            name=query.name,
            **_options(i),
        )
    return engine


def _sharded_engine(events, queries, width, workers):
    engine = ShardedEngine(
        window=width, workers=workers, batch_size=64, housekeeping_every=5
    )
    engine.warmup(events)
    for i, query in enumerate(queries):
        engine.register(
            query,
            strategy=STRATEGY_CYCLE[i % 4],
            name=query.name,
            **_options(i),
        )
    return engine


# ---------------------------------------------------------------------------
# kill/resume equivalence (the acceptance bar)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("width", [30.0, math.inf], ids=["window-30", "window-inf"])
def test_single_process_kill_resume_equivalence(tmp_path, workload, width):
    """Checkpoint + restore at three cut points == uninterrupted run."""
    events, queries = workload
    full = identities(_single_engine(events, queries, width).run(events).records)
    assert full, "workload must produce matches to be meaningful"
    for cut in CUT_POINTS:
        path = tmp_path / f"cut-{cut}.bin"
        first = _single_engine(events, queries, width)
        before = identities(first.run(events[:cut]).records)
        first.checkpoint(path, cursor=cut)
        del first  # the "kill": nothing survives but the snapshot file
        restored = ContinuousQueryEngine.restore(path, queries)
        after = identities(restored.run(events[cut:]).records)
        assert before + after == full, f"cut at {cut} diverged"


@pytest.mark.parametrize("workers", [1, 2])
def test_sharded_kill_resume_equivalence(tmp_path, workload, workers):
    """Per-shard checkpoints + coordinator manifest survive worker death.

    With ``workers=2`` the resumed state is rebuilt inside *fresh worker
    processes*, which is the rolling-restart scenario the subsystem
    exists for.
    """
    events, queries = workload
    base = _single_engine(events, queries, 30.0)
    full = identities(base.run(events).records)
    assert full
    for cut in CUT_POINTS:
        directory = tmp_path / f"w{workers}-cut-{cut}"
        first = _sharded_engine(events, queries, 30.0, workers)
        before = identities(first.run(events[:cut]).records)
        first.checkpoint(directory, cursor=cut)
        first.close()
        resumed = ShardedEngine.resume(directory, queries)
        try:
            after = identities(resumed.run(events[cut:]).records)
        finally:
            resumed.close()
        assert before + after == full, f"workers={workers} cut={cut} diverged"


def test_checkpoint_between_runs_is_repeatable(tmp_path, workload):
    """A restored engine can itself be checkpointed and restored again."""
    events, queries = workload
    full = identities(_single_engine(events, queries, 30.0).run(events).records)
    engine = _single_engine(events, queries, 30.0)
    records = identities(engine.run(events[:200]).records)
    for start, stop in ((200, 400), (400, len(events))):
        path = tmp_path / f"gen-{start}.bin"
        engine.checkpoint(path)
        engine = ContinuousQueryEngine.restore(path, queries)
        records += identities(engine.run(events[start:stop]).records)
    assert records == full


# ---------------------------------------------------------------------------
# restored internals
# ---------------------------------------------------------------------------


def test_restore_preserves_statistics_and_counters(tmp_path, workload):
    events, queries = workload
    engine = _single_engine(events, queries, 30.0)
    engine.run(events[:400])
    path = tmp_path / "state.bin"
    engine.checkpoint(path, cursor=400)
    restored, cursor = load_engine(path, queries)
    assert cursor == 400
    assert restored.graph.total_edges_seen == engine.graph.total_edges_seen
    assert restored.graph.num_edges == engine.graph.num_edges
    assert restored.graph.evicted_edges == engine.graph.evicted_edges
    assert restored.estimator.events_observed == engine.estimator.events_observed
    assert (
        restored.estimator.edge_histogram.as_dict()
        == engine.estimator.edge_histogram.as_dict()
    )
    assert (
        restored.estimator.path_counter.as_counter()
        == engine.estimator.path_counter.as_counter()
    )
    cutoff = engine.graph.window.cutoff
    for name, registered in engine.queries.items():
        twin = restored.queries[name]
        assert twin.strategy == registered.strategy
        assert (twin.algorithm.matches_emitted == registered.algorithm.matches_emitted)
        if registered.tree is None:
            assert (
                twin.algorithm.partial_match_count()
                == registered.algorithm.partial_match_count()
            )
        else:
            # The live table may still hold expired entries shadowed
            # behind an unexpired ring head; the snapshot drops them
            # (they can never influence output), so the restored count
            # is exactly the genuinely-live slice.
            for node, twin_node in zip(registered.tree.nodes, twin.tree.nodes):
                expected = sum(1 for match in node.table if match.min_time >= cutoff)
                assert len(twin_node.table) == expected
                assert (twin_node.table.inserted_total == node.table.inserted_total)


def test_snapshot_skips_unreclaimed_stale_matches(workload):
    """Entries below the window cutoff are not carried into the snapshot
    (they are invisible to joins and can never be rediscovered)."""
    events, queries = workload
    engine = _single_engine(events, queries, 30.0)
    engine.run(events[:500])
    data = engine_to_bytes(engine)
    restored, _ = engine_from_bytes(data, queries)
    cutoff = engine.graph.window.cutoff
    for registered in restored.queries.values():
        tree = registered.tree
        if tree is None:
            continue
        for node in tree.nodes:
            for match in node.table:
                assert match.min_time >= cutoff


# ---------------------------------------------------------------------------
# versioning / corruption / query-set validation
# ---------------------------------------------------------------------------


def _tiny_engine():
    engine = ContinuousQueryEngine(window=10.0)
    engine.warmup(list(mixed_etype_workload(50, num_queries=1, seed=1)[0]))
    query = QueryGraph.path(["T0", "T1"], name="q0")
    engine.register(query, strategy="Single", name="q0")
    return engine, [query]


def test_unknown_snapshot_version_raises_checkpoint_error():
    engine, queries = _tiny_engine()
    data = bytearray(engine_to_bytes(engine))
    offset = len(SNAPSHOT_MAGIC)
    assert data[offset] == SNAPSHOT_VERSION  # single varint byte today
    data[offset] = SNAPSHOT_VERSION + 9
    with pytest.raises(CheckpointError, match="unsupported snapshot version"):
        engine_from_bytes(bytes(data), queries)


def test_bad_magic_raises_checkpoint_error():
    engine, queries = _tiny_engine()
    data = b"NOTASNAP" + engine_to_bytes(engine)[8:]
    with pytest.raises(CheckpointError, match="bad magic"):
        engine_from_bytes(data, queries)


def test_truncated_snapshot_raises_checkpoint_error():
    engine, queries = _tiny_engine()
    data = engine_to_bytes(engine)
    with pytest.raises(CheckpointError):
        engine_from_bytes(data[: len(data) // 2], queries)


def test_trailing_garbage_raises_checkpoint_error():
    engine, queries = _tiny_engine()
    data = engine_to_bytes(engine) + b"\x00\x01\x02"
    with pytest.raises(CheckpointError, match="trailing"):
        engine_from_bytes(data, queries)


def test_mismatched_query_structure_raises_checkpoint_error():
    engine, _ = _tiny_engine()
    data = engine_to_bytes(engine)
    different = QueryGraph.path(["T0", "T9"], name="q0")  # same name, new shape
    with pytest.raises(CheckpointError, match="does not match the snapshot"):
        engine_from_bytes(data, [different])


def test_missing_query_raises_checkpoint_error():
    engine, _ = _tiny_engine()
    data = engine_to_bytes(engine)
    with pytest.raises(CheckpointError, match="not passed to restore"):
        engine_from_bytes(data, [QueryGraph.path(["T0", "T1"], name="other")])


def test_extra_query_raises_checkpoint_error():
    engine, queries = _tiny_engine()
    data = engine_to_bytes(engine)
    extra = QueryGraph.path(["T2", "T3"], name="extra")
    with pytest.raises(CheckpointError, match="must match exactly"):
        engine_from_bytes(data, queries + [extra])


def test_unnamed_query_raises_checkpoint_error():
    engine, _ = _tiny_engine()
    data = engine_to_bytes(engine)
    with pytest.raises(CheckpointError, match="carry a name"):
        engine_from_bytes(data, [QueryGraph.path(["T0", "T1"])])


def test_missing_manifest_raises_checkpoint_error(tmp_path):
    with pytest.raises(CheckpointError, match="no checkpoint manifest"):
        read_manifest(tmp_path)


def test_corrupt_manifest_raises_checkpoint_error(tmp_path):
    (tmp_path / "manifest.json").write_text("{not json", encoding="utf-8")
    with pytest.raises(CheckpointError, match="corrupt checkpoint manifest"):
        read_manifest(tmp_path)


def test_manifest_version_gate(tmp_path):
    write_manifest(
        tmp_path,
        {
            "mode": "single",
            "sequence": 1,
            "cursor": 0,
            "shards": [],
            "queries": [],
        },
    )
    manifest = read_manifest(tmp_path)
    manifest["version"] = 99
    import json

    (tmp_path / "manifest.json").write_text(json.dumps(manifest), encoding="utf-8")
    with pytest.raises(CheckpointError, match="unsupported checkpoint manifest"):
        read_manifest(tmp_path)


def test_sharded_resume_validates_queries(tmp_path, workload):
    events, queries = workload
    engine = _sharded_engine(events, queries, 30.0, 2)
    engine.run(events[:200])
    engine.checkpoint(tmp_path / "ck")
    engine.close()
    wrong = [q.copy(name=q.name) for q in queries]
    wrong[0] = QueryGraph.path(["T0", "T9"], name=queries[0].name)
    with pytest.raises(CheckpointError, match="does not match the checkpoint"):
        ShardedEngine.resume(tmp_path / "ck", wrong)
    with pytest.raises(CheckpointError, match="not provided for resume"):
        ShardedEngine.resume(tmp_path / "ck", queries[1:])


def test_checkpoint_requires_started_sharded_engine(tmp_path):
    engine = ShardedEngine(window=10.0)
    with pytest.raises(CheckpointError, match="started"):
        engine.checkpoint(tmp_path / "ck")


def test_failed_worker_checkpoint_does_not_kill_the_engine(tmp_path, workload):
    """A transient snapshot-write failure raises CheckpointError and leaves
    every worker (and its in-memory stream state) alive and retryable."""
    events, queries = workload
    directory = tmp_path / "ck"
    directory.mkdir()
    # The first checkpoint() call will use sequence 1; squatting a
    # directory on shard 0's snapshot path makes the worker's write fail.
    blocker = directory / "ckpt-000001-shard-0.bin.tmp"
    blocker.mkdir()
    engine = _sharded_engine(events, queries, 30.0, 2)
    try:
        before = identities(engine.run(events[:300]).records)
        with pytest.raises(CheckpointError, match="worker"):
            engine.checkpoint(directory)
        blocker.rmdir()
        engine.checkpoint(directory)  # same engine, retry succeeds
        after = identities(engine.run(events[300:]).records)
    finally:
        engine.close()
    full = identities(_single_engine(events, queries, 30.0).run(events).records)
    assert before + after == full
    resumed = ShardedEngine.resume(directory, queries)
    resumed.close()


def test_failed_single_checkpoint_raises_checkpoint_error(tmp_path, workload):
    events, queries = workload
    engine = _single_engine(events, queries, 30.0)
    engine.run(events[:100])
    target = tmp_path / "snap.bin"
    (tmp_path / "snap.bin.tmp").mkdir()  # write lands on a directory
    with pytest.raises(CheckpointError, match="cannot write snapshot"):
        engine.checkpoint(target)


def test_prune_removes_orphaned_tmp_files(tmp_path, workload):
    """*.tmp leftovers from a crash mid-write are cleaned by the next
    successful checkpoint (their sequence numbers never recur)."""
    events, queries = workload
    directory = tmp_path / "ck"
    directory.mkdir()
    orphan = directory / "ckpt-000000-shard-9.bin.tmp"
    orphan.write_bytes(b"half a snapshot")
    stale = directory / "ckpt-000000-shard-9.bin"
    stale.write_bytes(b"an old sequence")
    engine = _sharded_engine(events, queries, 30.0, 1)
    try:
        engine.run(events[:100])
        engine.checkpoint(directory)
    finally:
        engine.close()
    assert not orphan.exists()
    assert not stale.exists()
    assert (directory / "manifest.json").exists()


# ---------------------------------------------------------------------------
# binary codec
# ---------------------------------------------------------------------------


def test_binary_round_trip_scalars():
    writer = BinaryWriter()
    values = [
        None,
        True,
        False,
        0,
        -1,
        1,
        2**70,
        -(2**70),
        3.5,
        math.inf,
        -0.0,
        "",
        "héllo\tworld",
        b"\x00\xffbytes",
    ]
    for value in values:
        writer.write_value(value)
    writer.write_varint(0)
    writer.write_varint(300)
    writer.write_int(-300)
    writer.write_f64(1e-300)
    writer.write_str("αβγ")
    reader = BinaryReader(writer.getvalue())
    assert [reader.read_value() for _ in values] == values
    assert reader.read_varint() == 0
    assert reader.read_varint() == 300
    assert reader.read_int() == -300
    assert reader.read_f64() == 1e-300
    assert reader.read_str() == "αβγ"
    assert reader.at_end()
    reader.expect_end()


def test_binary_reader_truncation():
    writer = BinaryWriter()
    writer.write_str("hello")
    data = writer.getvalue()
    reader = BinaryReader(data[:-2])
    with pytest.raises(CheckpointError, match="truncated"):
        reader.read_str()


def test_binary_unknown_tag():
    with pytest.raises(CheckpointError, match="unknown value tag"):
        BinaryReader(b"\x63").read_value()


def test_binary_rejects_unsupported_types():
    with pytest.raises(CheckpointError, match="cannot serialize"):
        BinaryWriter().write_value(object())
