"""Unit tests for the compiled anchored-match plans (repro.isomorphism.plan).

The executor must be an exact drop-in for ``find_anchored_matches`` — same
matches, same emission order — because the SJ-Tree leaf hot path switched
to it wholesale. The compiler tests pin the static replay of
``_pick_next``'s edge-selection policy.
"""

from __future__ import annotations

import random

from repro.isomorphism import find_anchored_matches
from repro.isomorphism.plan import (
    CLOSE,
    EXTEND_IN,
    EXTEND_OUT,
    GLOBAL,
    compile_fragment_plans,
    compile_plan,
    execute_plans,
)
from repro.query import QueryGraph
from repro.sjtree import SJTree

from .util import graph_from_tuples


class TestCompile:
    def test_path_anchor_first_edge(self):
        query = QueryGraph.path(["A", "B", "C"])
        plan = compile_plan(query, 0)
        assert plan.anchor_edge_id == 0
        assert plan.etype == "A"
        assert [s.kind for s in plan.steps] == [EXTEND_OUT, EXTEND_OUT]
        assert [s.edge_id for s in plan.steps] == [1, 2]
        # step 1 extends from v1 binding v2; step 2 from v2 binding v3
        assert plan.steps[0].anchor_role == 1
        assert plan.steps[0].other_role == 2
        assert plan.steps[1].anchor_role == 2
        assert plan.steps[1].other_role == 3

    def test_path_anchor_middle_edge_extends_both_ways(self):
        query = QueryGraph.path(["A", "B", "C"])
        plan = compile_plan(query, 1)
        # edge 0 enters the bound v1 (EXTEND_IN), edge 2 leaves bound v2
        assert [s.kind for s in plan.steps] == [EXTEND_IN, EXTEND_OUT]
        assert [s.edge_id for s in plan.steps] == [0, 2]

    def test_triangle_closes_last_edge(self):
        query = QueryGraph.from_triples([(0, "A", 1), (1, "B", 2), (2, "C", 0)])
        plan = compile_plan(query, 0)
        kinds = [s.kind for s in plan.steps]
        # after anchoring 0->1, edge 1 extends; edge 2 then has both
        # endpoints bound and becomes a CLOSE existence check
        assert kinds == [EXTEND_OUT, CLOSE]

    def test_both_endpoints_bound_preferred_over_extension(self):
        # anchor = parallel edge pair: second parallel edge must CLOSE
        # before the dangling extension, mirroring _pick_next's priority
        query = QueryGraph.from_triples([(0, "A", 1), (0, "B", 1), (1, "C", 2)])
        plan = compile_plan(query, 0)
        assert [(s.kind, s.edge_id) for s in plan.steps] == [
            (CLOSE, 1),
            (EXTEND_OUT, 2),
        ]

    def test_disconnected_fragment_gets_global_step(self):
        query = QueryGraph.from_triples([(0, "A", 1), (2, "B", 3)])
        plan = compile_plan(query, 0)
        assert [s.kind for s in plan.steps] == [GLOBAL]

    def test_emit_order_covers_all_edges_sorted(self):
        query = QueryGraph.path(["A", "B", "C"])
        for anchor in range(3):
            plan = compile_plan(query, anchor)
            assert [eid for eid, _ in plan.emit_order] == [0, 1, 2]
            slots = sorted(slot for _, slot in plan.emit_order)
            assert slots == [0, 1, 2]

    def test_one_plan_per_anchor_role_in_edge_order(self):
        query = QueryGraph.path(["A", "A", "A"])
        plans = compile_fragment_plans(query)
        assert [p.anchor_edge_id for p in plans] == [0, 1, 2]

    def test_vertex_constraints_compiled_into_checks(self):
        query = QueryGraph()
        query.add_vertex(0, "ip")
        query.add_vertex(1, "host", binding="h1")
        query.add_edge(0, 1, "T")
        plan = compile_plan(query, 0)
        assert plan.src_check.vtype == "ip"
        assert plan.dst_check.vtype == "host"
        assert plan.dst_check.binding == "h1"

    def test_tree_build_populates_leaf_plans(self):
        query = QueryGraph.path(["A", "B"])
        tree = SJTree.from_leaf_partition(query, [(0,), (1,)])
        for leaf in tree.leaves():
            assert leaf.plans is not None
            assert len(leaf.plans) == len(leaf.fragment.edges)


def random_graph(rng, n_vertices=8, n_edges=40, etypes=("A", "B", "C")):
    rows = []
    for t in range(n_edges):
        src = f"v{rng.randrange(n_vertices)}"
        dst = f"v{rng.randrange(n_vertices)}"
        rows.append((src, dst, rng.choice(etypes), float(t)))
    return graph_from_tuples(rows)


FRAGMENTS = [
    QueryGraph.path(["A"]),
    QueryGraph.path(["A", "B"]),
    QueryGraph.path(["A", "B", "C"]),
    QueryGraph.path(["A", "A"]),
    QueryGraph.from_triples([(0, "A", 1), (0, "B", 2)]),  # out-star
    QueryGraph.from_triples([(1, "A", 0), (2, "B", 0)]),  # in-star
    QueryGraph.from_triples([(0, "A", 1), (1, "B", 2), (2, "C", 0)]),  # triangle
    QueryGraph.from_triples([(0, "A", 1), (0, "B", 1)]),  # parallel pair
    QueryGraph.from_triples([(0, "A", 0)]),  # self-loop
    QueryGraph.from_triples([(0, "A", 1), (2, "B", 3)]),  # disconnected
]


class TestExecutorParity:
    def test_matches_interpretive_backtracker_exactly(self):
        """Same matches, same order, across fragments and random graphs."""
        rng = random.Random(2024)
        for trial in range(8):
            graph = random_graph(rng)
            edges = list(graph.edges())
            for fragment in FRAGMENTS:
                plans = compile_fragment_plans(fragment)
                for anchor in edges[:: max(len(edges) // 10, 1)]:
                    expected = find_anchored_matches(graph, fragment, anchor)
                    got = execute_plans(graph, plans, anchor)
                    assert [m.fingerprint for m in got] == [
                        m.fingerprint for m in expected
                    ], f"fragment {fragment!r} anchor {anchor!r}"
                    for g, e in zip(got, expected):
                        assert g.vertex_map == e.vertex_map
                        assert g.min_time == e.min_time
                        assert g.max_time == e.max_time

    def test_self_loop_parity(self):
        graph = graph_from_tuples(
            [("x", "x", "A", 0.0), ("x", "y", "A", 1.0), ("y", "y", "A", 2.0)]
        )
        fragment = QueryGraph.from_triples([(0, "A", 0)])
        plans = compile_fragment_plans(fragment)
        for anchor in graph.edges():
            expected = find_anchored_matches(graph, fragment, anchor)
            got = execute_plans(graph, plans, anchor)
            assert [m.fingerprint for m in got] == [m.fingerprint for m in expected]

    def test_two_disconnected_same_type_edges_backtrack(self):
        """Regression: the non-loop GLOBAL step must release its edge on
        backtrack, or the second same-type disconnected step silently
        loses the swapped assignment (e1->Y, e2->X)."""
        graph = graph_from_tuples(
            [
                ("a", "b", "S", 0.0),
                ("p", "q", "T", 1.0),
                ("r", "s", "T", 2.0),
            ]
        )
        fragment = QueryGraph.from_triples([(0, "S", 1), (2, "T", 3), (4, "T", 5)])
        plans = compile_fragment_plans(fragment)
        anchor = next(iter(graph.edges_of_type("S")))
        expected = find_anchored_matches(graph, fragment, anchor)
        got = execute_plans(graph, plans, anchor)
        assert len(expected) == 2  # both T-edge assignments, both orders
        assert [m.fingerprint for m in got] == [m.fingerprint for m in expected]

    def test_limit_truncates_identically(self):
        graph = random_graph(random.Random(7), n_vertices=4, n_edges=30)
        fragment = QueryGraph.path(["A", "B"])
        plans = compile_fragment_plans(fragment)
        for anchor in graph.edges():
            for limit in (1, 2, 5):
                expected = find_anchored_matches(graph, fragment, anchor, limit=limit)
                got = execute_plans(graph, plans, anchor, limit=limit)
                assert [m.fingerprint for m in got] == [m.fingerprint for m in expected]

    def test_typed_and_bound_vertices(self):
        rows = [
            ("a", "b", "T", 0.0, "ip", "host"),
            ("a", "c", "T", 1.0, "ip", "host"),
            ("x", "b", "T", 2.0, "other", "host"),
        ]
        graph = graph_from_tuples(rows)
        query = QueryGraph()
        query.add_vertex(0, "ip")
        query.add_vertex(1, "host", binding="b")
        query.add_edge(0, 1, "T")
        plans = compile_fragment_plans(query)
        for anchor in graph.edges():
            expected = find_anchored_matches(graph, query, anchor)
            got = execute_plans(graph, plans, anchor)
            assert [m.fingerprint for m in got] == [m.fingerprint for m in expected]
        all_found = [
            m
            for anchor in graph.edges()
            for m in execute_plans(graph, plans, anchor)
        ]
        assert len(all_found) == 1  # only a->b satisfies type + binding
