"""Unit tests for decomposition primitives."""

from repro.graph import IN, OUT
from repro.query import QueryGraph
from repro.sjtree import EdgePrimitive, PathPrimitive, instance_vertices
from repro.stats import make_signature, make_token


def sig(d1, t1, d2, t2):
    return make_signature(make_token(d1, t1), make_token(d2, t2))


def path_query():
    return QueryGraph.path(["ESP", "TCP", "ICMP", "GRE"])


class TestEdgePrimitive:
    def test_finds_matching_edge(self):
        prim = EdgePrimitive(selectivity=0.1, etype="TCP")
        query = path_query()
        remaining = {e.edge_id for e in query.edges}
        assert prim.find_instance(query, remaining, None) == (1,)

    def test_respects_remaining_set(self):
        prim = EdgePrimitive(selectivity=0.1, etype="TCP")
        query = path_query()
        assert prim.find_instance(query, {0, 2, 3}, None) is None

    def test_frontier_constraint(self):
        prim = EdgePrimitive(selectivity=0.1, etype="GRE")
        query = path_query()
        remaining = {e.edge_id for e in query.edges}
        assert prim.find_instance(query, remaining, {0, 1}) is None
        assert prim.find_instance(query, remaining, {3}) == (3,)

    def test_deterministic_lowest_id(self):
        query = QueryGraph.path(["T", "T", "T"])
        prim = EdgePrimitive(selectivity=0.1, etype="T")
        assert prim.find_instance(query, {0, 1, 2}, None) == (0,)

    def test_metadata(self):
        prim = EdgePrimitive(selectivity=0.1, etype="TCP")
        assert prim.num_edges == 1
        assert "TCP" in prim.label


class TestPathPrimitive:
    def test_finds_centre_pair(self):
        query = path_query()
        prim = PathPrimitive(selectivity=0.01, signature=sig(IN, "ESP", OUT, "TCP"))
        remaining = {e.edge_id for e in query.edges}
        assert prim.find_instance(query, remaining, None) == (0, 1)

    def test_wrong_direction_not_found(self):
        query = path_query()
        prim = PathPrimitive(selectivity=0.01, signature=sig(OUT, "ESP", OUT, "TCP"))
        remaining = {e.edge_id for e in query.edges}
        assert prim.find_instance(query, remaining, None) is None

    def test_star_pair(self):
        query = QueryGraph.from_triples([(0, "A", 1), (0, "B", 2)])
        prim = PathPrimitive(selectivity=0.01, signature=sig(OUT, "A", OUT, "B"))
        assert prim.find_instance(query, {0, 1}, None) == (0, 1)

    def test_frontier_constraint(self):
        query = path_query()
        prim = PathPrimitive(selectivity=0.01, signature=sig(IN, "ICMP", OUT, "GRE"))
        remaining = {e.edge_id for e in query.edges}
        assert prim.find_instance(query, remaining, {0}) is None
        assert prim.find_instance(query, remaining, {3}) == (2, 3)

    def test_remaining_respected(self):
        query = path_query()
        prim = PathPrimitive(selectivity=0.01, signature=sig(IN, "ESP", OUT, "TCP"))
        assert prim.find_instance(query, {1, 2, 3}, None) is None

    def test_parallel_edge_pair(self):
        query = QueryGraph()
        query.add_edge(0, 1, "T")
        query.add_edge(0, 1, "U")
        prim = PathPrimitive(selectivity=0.01, signature=sig(OUT, "T", OUT, "U"))
        assert prim.find_instance(query, {0, 1}, None) == (0, 1)

    def test_metadata(self):
        prim = PathPrimitive(selectivity=0.01, signature=sig(IN, "A", OUT, "B"))
        assert prim.num_edges == 2
        assert "A" in prim.label and "B" in prim.label


class TestInstanceVertices:
    def test_union_of_endpoints(self):
        query = path_query()
        assert instance_vertices(query, [0, 1]) == {0, 1, 2}
        assert instance_vertices(query, [3]) == {3, 4}
