"""Unit tests for the exclusive-time profiler."""

import time
from contextlib import contextmanager

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import ProfileCounters
from repro.analysis import profiling as profiling_module


class TestPhases:
    def test_basic_accumulation(self):
        profile = ProfileCounters()
        with profile.phase("iso"):
            time.sleep(0.01)
        assert profile.seconds("iso") >= 0.008
        assert profile.phases["iso"].calls == 1

    def test_repeat_entries_sum(self):
        profile = ProfileCounters()
        for _ in range(3):
            with profile.phase("iso"):
                pass
        assert profile.phases["iso"].calls == 3

    def test_nested_phases_measure_exclusive_time(self):
        profile = ProfileCounters()
        with profile.phase("join"):
            time.sleep(0.02)
            with profile.phase("iso"):
                time.sleep(0.02)
            time.sleep(0.01)
        iso = profile.seconds("iso")
        join = profile.seconds("join")
        assert iso == pytest.approx(0.02, abs=0.01)
        assert join == pytest.approx(0.03, abs=0.015)
        # the inner phase's time is NOT double counted in the outer
        assert profile.total_seconds == pytest.approx(0.05, abs=0.02)

    def test_unknown_phase_is_zero(self):
        assert ProfileCounters().seconds("nope") == 0.0

    def test_fraction(self):
        profile = ProfileCounters()
        with profile.phase("a"):
            time.sleep(0.01)
        assert profile.fraction("a") == pytest.approx(1.0)
        assert ProfileCounters().fraction("a") == 0.0


class TestCountersAndMerge:
    def test_bump(self):
        profile = ProfileCounters()
        profile.bump("matches")
        profile.bump("matches", 4)
        assert profile.counters["matches"] == 5

    def test_merge(self):
        a, b = ProfileCounters(), ProfileCounters()
        with a.phase("iso"):
            pass
        with b.phase("iso"):
            pass
        with b.phase("join"):
            pass
        b.bump("n", 2)
        a.merge(b)
        assert a.phases["iso"].calls == 2
        assert "join" in a.phases
        assert a.counters["n"] == 2

    def test_report_smoke(self):
        profile = ProfileCounters()
        with profile.phase("iso"):
            pass
        profile.bump("events")
        text = profile.report()
        assert "iso" in text and "events" in text
        assert ProfileCounters().report() == "(no profile data)"


# ---------------------------------------------------------------------------
# property tests (hypothesis): the exclusive-time accounting invariants
# ---------------------------------------------------------------------------


class _FakeClock:
    """Deterministic perf_counter stand-in; advances only on demand.

    Integer-valued "seconds" keep every float sum exact, so the
    properties below can assert equality instead of approximation.
    """

    def __init__(self) -> None:
        self.now = 0.0

    def perf_counter(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@contextmanager
def _fake_clock():
    clock = _FakeClock()
    real = profiling_module.time
    profiling_module.time = clock
    try:
        yield clock
    finally:
        profiling_module.time = real


# A phase program: open/close brackets over a few names, with integer
# "work" durations attached to every step. Exits beyond the open depth
# are dropped; whatever is left open at the end is closed.
_STEPS = st.lists(
    st.tuples(
        st.sampled_from(["iso", "join", "retro", None]),  # None = exit
        st.integers(min_value=0, max_value=9),
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=200, deadline=None)
@given(steps=_STEPS, tail=st.integers(min_value=0, max_value=9))
def test_nested_self_times_sum_to_in_phase_wall_clock(steps, tail):
    """Exclusive accounting: phase seconds sum exactly to the wall-clock
    time that elapsed while *any* phase was open — nesting never double
    counts, depth-0 gaps never leak in."""
    profile = ProfileCounters()
    expected_in_phase = 0.0
    expected_calls = {}
    with _fake_clock() as clock:
        depth = 0
        for name, dt in steps:
            clock.advance(dt)
            if depth:
                expected_in_phase += dt
            if name is None:
                if depth:
                    profile.phase_exit()
                    depth -= 1
            else:
                profile.phase_enter(name)
                expected_calls[name] = expected_calls.get(name, 0) + 1
                depth += 1
        while depth:  # close whatever is still open
            clock.advance(tail)
            expected_in_phase += tail
            profile.phase_exit()
            depth -= 1
    assert profile.total_seconds == expected_in_phase
    assert not profile._stack
    assert {
        name: timer.calls for name, timer in profile.phases.items() if timer.calls
    } == expected_calls


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.dictionaries(
            st.sampled_from(["iso", "join", "retro", "evict"]),
            st.tuples(
                st.integers(min_value=0, max_value=4096),  # seconds * 4096
                st.integers(min_value=0, max_value=100),  # calls
            ),
            max_size=4,
        ),
        min_size=3,
        max_size=3,
    ),
    st.lists(
        st.dictionaries(
            st.sampled_from(["events", "matches"]),
            st.integers(min_value=0, max_value=1000),
            max_size=2,
        ),
        min_size=3,
        max_size=3,
    ),
)
def test_merge_is_associative(phase_specs, counter_specs):
    """merge(merge(a, b), c) == merge(a, merge(b, c)).

    Seconds are multiples of 1/4096 — exactly representable, so the sums
    are order-independent and equality is exact.
    """

    def build(phases, counters):
        profile = ProfileCounters()
        for name, (ticks, calls) in phases.items():
            profile.phase_add(name, ticks / 4096.0, calls)
        for name, value in counters.items():
            profile.bump(name, value)
        return profile

    def state(profile):
        return (
            {n: (t.seconds, t.calls) for n, t in profile.phases.items()},
            dict(profile.counters),
        )

    def merged(x, y):
        out = ProfileCounters()
        out.merge(x)
        out.merge(y)
        return out

    a, b, c = (build(p, k) for p, k in zip(phase_specs, counter_specs))
    assert state(merged(merged(a, b), c)) == state(merged(a, merged(b, c)))


@settings(max_examples=200, deadline=None)
@given(
    before=st.integers(min_value=0, max_value=9),
    after=st.integers(min_value=0, max_value=9),
    ticks=st.integers(min_value=0, max_value=4096),
    calls=st.integers(min_value=1, max_value=512),
    same_name=st.booleans(),
)
def test_phase_add_does_not_disturb_open_stack(before, after, ticks, calls, same_name):
    """Chunk-style phase_add() inside an open phase credits its own phase
    without pausing, resuming or re-timing the enclosing one."""
    credited = ticks / 4096.0
    stage = "open" if same_name else "stage"
    profile = ProfileCounters()
    with _fake_clock() as clock:
        profile.phase_enter("open")
        clock.advance(before)
        profile.phase_add(stage, credited, calls)
        clock.advance(after)
        profile.phase_exit()
    expected_open = float(before + after) + (credited if same_name else 0.0)
    assert profile.seconds("open") == expected_open
    assert profile.phases["open"].calls == 1 + (calls if same_name else 0)
    if not same_name:
        assert profile.seconds("stage") == credited
        assert profile.phases["stage"].calls == calls
    assert not profile._stack
