"""Unit tests for the exclusive-time profiler."""

import time

import pytest

from repro.analysis import ProfileCounters


class TestPhases:
    def test_basic_accumulation(self):
        profile = ProfileCounters()
        with profile.phase("iso"):
            time.sleep(0.01)
        assert profile.seconds("iso") >= 0.008
        assert profile.phases["iso"].calls == 1

    def test_repeat_entries_sum(self):
        profile = ProfileCounters()
        for _ in range(3):
            with profile.phase("iso"):
                pass
        assert profile.phases["iso"].calls == 3

    def test_nested_phases_measure_exclusive_time(self):
        profile = ProfileCounters()
        with profile.phase("join"):
            time.sleep(0.02)
            with profile.phase("iso"):
                time.sleep(0.02)
            time.sleep(0.01)
        iso = profile.seconds("iso")
        join = profile.seconds("join")
        assert iso == pytest.approx(0.02, abs=0.01)
        assert join == pytest.approx(0.03, abs=0.015)
        # the inner phase's time is NOT double counted in the outer
        assert profile.total_seconds == pytest.approx(0.05, abs=0.02)

    def test_unknown_phase_is_zero(self):
        assert ProfileCounters().seconds("nope") == 0.0

    def test_fraction(self):
        profile = ProfileCounters()
        with profile.phase("a"):
            time.sleep(0.01)
        assert profile.fraction("a") == pytest.approx(1.0)
        assert ProfileCounters().fraction("a") == 0.0


class TestCountersAndMerge:
    def test_bump(self):
        profile = ProfileCounters()
        profile.bump("matches")
        profile.bump("matches", 4)
        assert profile.counters["matches"] == 5

    def test_merge(self):
        a, b = ProfileCounters(), ProfileCounters()
        with a.phase("iso"):
            pass
        with b.phase("iso"):
            pass
        with b.phase("join"):
            pass
        b.bump("n", 2)
        a.merge(b)
        assert a.phases["iso"].calls == 2
        assert "join" in a.phases
        assert a.counters["n"] == 2

    def test_report_smoke(self):
        profile = ProfileCounters()
        with profile.phase("iso"):
            pass
        profile.bump("events")
        text = profile.report()
        assert "iso" in text and "events" in text
        assert ProfileCounters().report() == "(no profile data)"
