"""Property-based tests for Match algebra and the decomposition builder."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.graph import Edge
from repro.isomorphism import Match
from repro.query import QueryGraph
from repro.sjtree import build_sj_tree, leaf_partition_of
from repro.stats import SelectivityEstimator

from .util import events_from_tuples


@st.composite
def path_matches(draw):
    """A path query plus two disjoint partial matches over it."""
    length = draw(st.integers(min_value=2, max_value=5))
    query = QueryGraph.path(["T"] * length)
    cut = draw(st.integers(min_value=1, max_value=length - 1))
    vertices = [f"d{i}" for i in range(length + 1)]
    edges = [
        Edge(
            edge_id=i,
            src=vertices[i],
            dst=vertices[i + 1],
            etype="T",
            timestamp=float(draw(st.integers(0, 20))),
        )
        for i in range(length)
    ]
    left = Match.build(query.edges_by_id(), {i: edges[i] for i in range(cut)})
    right = Match.build(query.edges_by_id(), {i: edges[i] for i in range(cut, length)})
    return query, left, right


class TestJoinAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(data=path_matches())
    def test_join_commutes(self, data):
        _, left, right = data
        assert left is not None and right is not None
        assert left.join(right) == right.join(left)

    @settings(max_examples=60, deadline=None)
    @given(data=path_matches())
    def test_join_preserves_times_and_edges(self, data):
        query, left, right = data
        joined = left.join(right)
        assert joined is not None
        assert joined.min_time == min(left.min_time, right.min_time)
        assert joined.max_time == max(left.max_time, right.max_time)
        assert joined.query_edge_ids() == (
            left.query_edge_ids() | right.query_edge_ids()
        )
        assert joined.vertex_map.keys() == set(query.vertices())

    @settings(max_examples=60, deadline=None)
    @given(data=path_matches())
    def test_self_join_is_rejected(self, data):
        _, left, _ = data
        assert left.join(left) is None

    @settings(max_examples=60, deadline=None)
    @given(data=path_matches())
    def test_fingerprint_identity(self, data):
        query, left, right = data
        joined = left.join(right)
        rebuilt = Match.build(query.edges_by_id(), dict(joined.pairs))
        assert rebuilt == joined
        assert hash(rebuilt) == hash(joined)


@st.composite
def random_queries(draw):
    """Connected random query built by progressive attachment."""
    n_edges = draw(st.integers(min_value=1, max_value=6))
    query = QueryGraph(name="rq")
    etypes = ["A", "B", "C"]
    query.add_edge(0, 1, draw(st.sampled_from(etypes)))
    next_vertex = 2
    for _ in range(n_edges - 1):
        anchor = draw(st.integers(min_value=0, max_value=next_vertex - 1))
        outward = draw(st.booleans())
        if outward:
            query.add_edge(anchor, next_vertex, draw(st.sampled_from(etypes)))
        else:
            query.add_edge(next_vertex, anchor, draw(st.sampled_from(etypes)))
        next_vertex += 1
    return query


def rich_estimator():
    rows = []
    node = 0
    for block in range(6):
        for etype in ("A", "B", "C", "A", "C", "B"):
            rows.append((f"n{node}", f"n{node + 1}", etype))
            node += 1
    # star mixes for out-out / in-in signatures
    for i in range(6):
        rows.append((f"hub", f"s{i}", ["A", "B", "C"][i % 3]))
        rows.append((f"t{i}", f"hub2", ["A", "B", "C"][i % 3]))
    est = SelectivityEstimator()
    est.observe_events(events_from_tuples(rows))
    return est


ESTIMATOR = rich_estimator()


class TestBuilderProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        query=random_queries(),
        strategy=st.sampled_from(["single", "path", "mixed"]),
    )
    def test_leaves_partition_the_query(self, query, strategy):
        tree = build_sj_tree(query, ESTIMATOR, strategy)
        covered = sorted(q for leaf in leaf_partition_of(tree) for q in leaf)
        assert covered == sorted(e.edge_id for e in query.edges)

    @settings(max_examples=60, deadline=None)
    @given(query=random_queries(), strategy=st.sampled_from(["single", "path"]))
    def test_internal_cuts_are_nonempty_for_connected_queries(self, query, strategy):
        tree = build_sj_tree(query, ESTIMATOR, strategy)
        for node in tree.nodes:
            if not node.is_leaf:
                assert node.cut_vertices, (f"empty cut in {tree.describe()}")

    @settings(max_examples=60, deadline=None)
    @given(query=random_queries())
    def test_leaf_sizes_bounded_by_primitives(self, query):
        tree = build_sj_tree(query, ESTIMATOR, "path")
        for leaf in tree.leaves():
            assert len(leaf.edge_ids) in (1, 2)

    @settings(max_examples=60, deadline=None)
    @given(query=random_queries())
    def test_expected_selectivity_in_unit_interval(self, query):
        tree = build_sj_tree(query, ESTIMATOR, "path")
        assert 0.0 <= tree.expected_selectivity() <= 1.0
