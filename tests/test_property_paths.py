"""Property-based tests: streaming path counter ≡ Algorithm 5, under
arbitrary interleavings of insertions and window evictions."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.graph import EdgeEvent, StreamingGraph
from repro.stats import TwoEdgePathCounter, count_two_edge_paths


@st.composite
def windowed_streams(draw):
    n_vertices = draw(st.integers(min_value=2, max_value=6))
    n_edges = draw(st.integers(min_value=1, max_value=40))
    window = draw(st.sampled_from([3.0, 8.0, 1e9]))
    events = []
    t = 0.0
    for _ in range(n_edges):
        t += draw(st.integers(min_value=0, max_value=3))
        src = draw(st.integers(min_value=0, max_value=n_vertices - 1))
        dst = draw(st.integers(min_value=0, max_value=n_vertices - 1))
        etype = draw(st.sampled_from(["A", "B"]))
        events.append(EdgeEvent(src, dst, etype, float(t)))
    return events, window


@settings(max_examples=60, deadline=None)
@given(data=windowed_streams())
def test_streaming_counter_tracks_live_graph(data):
    events, window = data
    graph = StreamingGraph(window)
    counter = TwoEdgePathCounter()
    live = {}
    for event in events:
        edge = graph.add_event(event)  # may evict older edges
        # mirror the graph's evictions into the counter
        still_live = {e.edge_id for e in graph.edges()}
        for known_id in list(live):
            if known_id not in still_live:
                counter.remove_edge(live.pop(known_id))
        counter.add_edge(edge)
        live[edge.edge_id] = edge
    assert counter.as_counter() == count_two_edge_paths(graph)
    assert counter.total == sum(count_two_edge_paths(graph).values())


@settings(max_examples=40, deadline=None)
@given(data=windowed_streams())
def test_full_teardown_reaches_zero(data):
    events, _ = data
    graph = StreamingGraph()
    counter = TwoEdgePathCounter()
    edges = []
    for event in events:
        edge = graph.add_event(event)
        counter.add_edge(edge)
        edges.append(edge)
    for edge in reversed(edges):
        counter.remove_edge(edge)
    assert counter.total == 0
    assert len(counter) == 0
    assert counter.as_counter() == {}


@settings(max_examples=40, deadline=None)
@given(data=windowed_streams())
def test_counts_are_non_negative_and_consistent(data):
    events, _ = data
    graph = StreamingGraph()
    counter = TwoEdgePathCounter()
    for event in events:
        counter.add_edge(graph.add_event(event))
    assert all(c > 0 for _, c in counter.distribution())
    assert counter.total == sum(c for _, c in counter.distribution())
    for signature, _ in counter.distribution():
        assert counter.seen(signature)
        assert 0.0 < counter.selectivity(signature) <= 1.0
