"""Unit tests for the query graph model."""

import pytest

from repro.errors import QueryError
from repro.query import QueryGraph


def three_hop():
    return QueryGraph.path(["ESP", "TCP", "ICMP"], vtype="ip", name="p3")


class TestConstruction:
    def test_path_constructor(self):
        query = three_hop()
        assert query.num_vertices == 4
        assert query.num_edges == 3
        assert [e.etype for e in query.edges] == ["ESP", "TCP", "ICMP"]
        assert all(query.vertex_type(v) == "ip" for v in query.vertices())

    def test_from_triples(self):
        query = QueryGraph.from_triples(
            [(0, "A", 1), (1, "B", 2)], vertex_types={0: "x"}
        )
        assert query.num_edges == 2
        assert query.vertex_type(0) == "x"
        assert query.vertex_type(2) is None

    def test_auto_vertex_declaration(self):
        query = QueryGraph()
        query.add_edge(5, 9, "T")
        assert set(query.vertices()) == {5, 9}
        assert query.vertex_type(5) is None

    def test_conflicting_vertex_types_rejected(self):
        query = QueryGraph()
        query.add_vertex(0, "ip")
        with pytest.raises(QueryError, match="conflicting"):
            query.add_vertex(0, "host")

    def test_type_can_be_refined_from_wildcard(self):
        query = QueryGraph()
        query.add_vertex(0)
        query.add_vertex(0, "ip")
        assert query.vertex_type(0) == "ip"

    def test_empty_etype_rejected(self):
        with pytest.raises(QueryError):
            QueryGraph().add_edge(0, 1, "")

    def test_edge_ids_dense(self):
        query = three_hop()
        assert [e.edge_id for e in query.edges] == [0, 1, 2]
        assert query.edge(1).etype == "TCP"

    def test_unknown_edge_and_vertex_raise(self):
        query = three_hop()
        with pytest.raises(QueryError):
            query.edge(17)
        with pytest.raises(QueryError):
            query.vertex_type(42)
        with pytest.raises(QueryError):
            query.incident(42)


class TestStructure:
    def test_incident(self):
        query = three_hop()
        assert [e.edge_id for e in query.incident(0)] == [0]
        assert sorted(e.edge_id for e in query.incident(1)) == [0, 1]
        assert query.degree(1) == 2

    def test_incident_self_loop_once(self):
        query = QueryGraph()
        query.add_edge(0, 0, "T")
        assert len(query.incident(0)) == 1

    def test_etypes_in_first_use_order(self):
        query = QueryGraph.path(["B", "A", "B"])
        assert query.etypes() == ["B", "A"]

    def test_is_connected(self):
        assert three_hop().is_connected()
        disconnected = QueryGraph()
        disconnected.add_edge(0, 1, "T")
        disconnected.add_edge(2, 3, "T")
        assert not disconnected.is_connected()
        assert QueryGraph().is_connected()

    def test_diameter_path(self):
        assert three_hop().diameter() == 3

    def test_diameter_star(self):
        query = QueryGraph()
        for leaf in (1, 2, 3):
            query.add_edge(0, leaf, "T")
        assert query.diameter() == 2

    def test_diameter_disconnected_raises(self):
        query = QueryGraph()
        query.add_edge(0, 1, "T")
        query.add_edge(2, 3, "T")
        with pytest.raises(QueryError):
            query.diameter()


class TestVertexOk:
    def test_wildcard_accepts_any_type(self):
        query = QueryGraph()
        query.add_edge(0, 1, "T")
        assert query.vertex_ok(0, "x", "whatever")

    def test_type_constraint(self):
        query = three_hop()
        assert query.vertex_ok(0, "x", "ip")
        assert not query.vertex_ok(0, "x", "host")

    def test_binding_constraint(self):
        query = QueryGraph()
        query.add_vertex(0, "ip", binding="10.0.0.1")
        query.add_edge(0, 1, "T")
        assert query.vertex_ok(0, "10.0.0.1", "ip")
        assert not query.vertex_ok(0, "10.0.0.2", "ip")
        assert query.binding(0) == "10.0.0.1"
        assert query.binding(1) is None


class TestSubgraph:
    def test_preserves_ids_types_bindings(self):
        query = three_hop()
        query.add_vertex(0, binding="ip1")
        fragment = query.subgraph([1, 2])
        assert fragment.num_edges == 2
        assert sorted(fragment.edge_ids()) == [1, 2]
        assert fragment.edge(1).etype == "TCP"
        assert set(fragment.vertices()) == {1, 2, 3}
        assert fragment.vertex_type(2) == "ip"

    def test_binding_carried_into_fragment(self):
        query = three_hop()
        query.add_vertex(1, binding="ip9")
        fragment = query.subgraph([0])
        assert fragment.binding(1) == "ip9"

    def test_fragment_edge_lookup_non_dense(self):
        fragment = three_hop().subgraph([2])
        assert fragment.edge(2).etype == "ICMP"
        with pytest.raises(QueryError):
            fragment.edge(0)

    def test_edges_by_id(self):
        fragment = three_hop().subgraph([0, 2])
        assert set(fragment.edges_by_id()) == {0, 2}

    def test_copy_independent(self):
        query = three_hop()
        clone = query.copy()
        clone.add_edge(3, 0, "GRE")
        assert query.num_edges == 3
        assert clone.num_edges == 4


class TestDescribe:
    def test_describe_mentions_everything(self):
        query = three_hop()
        query.add_vertex(0, binding="ip7")
        text = query.describe()
        assert "p3" in text
        assert "v0: ip = 'ip7'" in text
        assert "-TCP->" in text
