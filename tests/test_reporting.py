"""Unit tests for the ASCII reporting helpers."""

import pytest

from repro.analysis.reporting import (
    Series,
    ascii_table,
    format_cell,
    log_histogram,
    series_table,
    speedup_summary,
)


class TestFormatCell:
    def test_floats(self):
        assert format_cell(0.0) == "0"
        assert format_cell(1.5) == "1.5"
        assert format_cell(123456.0) == "1.235e+05"
        assert format_cell(0.00001) == "1.000e-05"
        assert format_cell(float("inf")) == "inf"

    def test_bool_and_str(self):
        assert format_cell(True) == "yes"
        assert format_cell("x") == "x"
        assert format_cell(7) == "7"


class TestAsciiTable:
    def test_alignment_and_header(self):
        table = ascii_table(
            ["name", "value"], [["alpha", 1], ["b", 123456.0]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_empty_rows(self):
        table = ascii_table(["a"], [])
        assert "a" in table


class TestSeriesTable:
    def test_grid_with_missing_points(self):
        s1 = Series("Lazy")
        s1.add(3, 0.5)
        s1.add(4, 0.7)
        s2 = Series("VF2")
        s2.add(3, 50.0)
        text = series_table([s1, s2], x_label="size")
        assert "Lazy" in text and "VF2" in text
        lines = text.splitlines()
        assert any("0.500" in line for line in lines)
        assert any(
            "-" == cell.strip()
            for line in lines
            for cell in line.split("  ")
            if cell
        )


class TestLogHistogram:
    def test_counts_sum(self):
        import re

        text = log_histogram([1e-5, 1e-5, 1e-1, 10.0], bins=6, lo=-6, hi=2)
        counts = [
            int(re.search(r"\)\s+(\d+)", line).group(1))
            for line in text.splitlines()
        ]
        assert sum(counts) == 4

    def test_zero_values_clamp_to_floor(self):
        text = log_histogram([0.0], bins=4, lo=-4, hi=0)
        first = text.splitlines()[0]
        assert " 1 " in first or first.endswith("1 #" + "#" * 39)

    def test_validates_bins(self):
        with pytest.raises(ValueError):
            log_histogram([1.0], bins=0)


class TestSpeedupSummary:
    def test_factors(self):
        text = speedup_summary("VF2", 100.0, {"Lazy": 1.0, "Eager": 10.0})
        assert "100.0x" in text
        assert "10.0x" in text

    def test_zero_time_handled(self):
        text = speedup_summary("VF2", 1.0, {"Lazy": 0.0})
        assert "too fast" in text
