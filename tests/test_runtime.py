"""Unit tests for the parallel runtime: partitioning and coordination."""

import math
import multiprocessing
import queue as queue_module
import time

import pytest

from repro import QueryGraph, ShardedEngine
from repro.errors import QueryError
from repro.graph.types import EdgeEvent
from repro.runtime import (
    estimate_query_cost,
    greedy_balanced,
    round_robin,
)
from repro.stats.estimator import SelectivityEstimator


def events_for(counts):
    """A stream with the given per-etype counts, monotone timestamps."""
    events, t = [], 0.0
    for etype, count in counts.items():
        for i in range(count):
            t += 1.0
            events.append(EdgeEvent(f"a{i}", f"b{i}", etype, t))
    return events


class TestCostModel:
    def test_cold_estimator_counts_query_edges(self):
        query = QueryGraph.path(["A", "B", "C"], name="q")
        assert estimate_query_cost(query, SelectivityEstimator()) == 3.0
        assert estimate_query_cost(query, None) == 3.0

    def test_warm_estimator_sums_edge_selectivities(self):
        estimator = SelectivityEstimator()
        estimator.observe_events(events_for({"A": 60, "B": 30, "C": 10}))
        query = QueryGraph.path(["A", "B"], name="q")
        assert estimate_query_cost(query, estimator) == pytest.approx(0.9)

    def test_unseen_type_gets_floor_not_zero(self):
        estimator = SelectivityEstimator()
        estimator.observe_events(events_for({"A": 10}))
        query = QueryGraph.path(["Z"], name="q")
        assert estimate_query_cost(query, estimator) > 0.0


class TestGreedyBalanced:
    def test_heaviest_first_onto_lightest_shard(self):
        # LPT on [5, 4, 3, 3, 3] over 2 shards -> {5, 3} vs {4, 3, 3}
        shards = greedy_balanced([5.0, 4.0, 3.0, 3.0, 3.0], workers=2)
        loads = sorted(shard.cost for shard in shards)
        assert loads == [8.0, 10.0]

    def test_deterministic_under_ties(self):
        costs = [1.0] * 6
        first = greedy_balanced(costs, workers=3)
        second = greedy_balanced(costs, workers=3)
        assert first == second

    def test_positions_ascend_within_shard(self):
        shards = greedy_balanced([1.0, 2.0, 3.0, 4.0], workers=2)
        for shard in shards:
            assert list(shard.positions) == sorted(shard.positions)

    def test_no_empty_shards_when_overprovisioned(self):
        shards = greedy_balanced([1.0, 2.0], workers=8)
        assert len(shards) == 2
        assert all(len(shard) == 1 for shard in shards)

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            greedy_balanced([1.0], workers=0)

    def test_all_zero_costs_fall_back_to_round_robin(self):
        # Regression: with every cost exactly 0.0 the LPT heap always
        # found shard 0 lightest (tie on load 0.0, lowest worker id
        # wins), so all six queries piled onto worker 0 and the other
        # shards spawned empty. Zero signal must mean round-robin.
        shards = greedy_balanced([0.0] * 6, workers=3)
        assert shards == round_robin(6, workers=3)
        assert [shard.positions for shard in shards] == [
            (0, 3),
            (1, 4),
            (2, 5),
        ]
        # ... and an empty/overprovisioned zero-cost set stays sane too
        assert greedy_balanced([], workers=3) == []
        assert len(greedy_balanced([0.0], workers=4)) == 1


class TestRoundRobin:
    def test_stripes_by_position(self):
        shards = round_robin(5, workers=2)
        assert shards[0].positions == (0, 2, 4)
        assert shards[1].positions == (1, 3)

    def test_overprovisioned(self):
        assert len(round_robin(1, workers=4)) == 1


@pytest.fixture
def warm_events():
    return events_for({"A": 20, "B": 12, "C": 6})


def register_two(engine):
    engine.register(QueryGraph.path(["A", "B"], name="ab"), strategy="Single")
    engine.register(QueryGraph.path(["C"], name="c"), strategy="Single")


class TestShardedEngineAPI:
    def test_serial_fallback_spawns_no_processes(self, warm_events):
        engine = ShardedEngine(window=math.inf, workers=1)
        engine.warmup(warm_events)
        register_two(engine)
        try:
            engine.run(warm_events)
            assert engine._procs == []
            assert engine._serial_engine is not None
        finally:
            engine.close()

    def test_single_shard_skips_multiprocessing_too(self, warm_events):
        # 4 workers but one query -> one shard -> in-process.
        engine = ShardedEngine(window=math.inf, workers=4)
        engine.warmup(warm_events)
        engine.register(QueryGraph.path(["A"], name="a"), strategy="Single")
        try:
            engine.run(warm_events)
            assert engine._procs == []
        finally:
            engine.close()

    def test_register_after_start_rejected(self, warm_events):
        engine = ShardedEngine(window=math.inf, workers=1)
        engine.warmup(warm_events)
        register_two(engine)
        try:
            engine.start()
            with pytest.raises(QueryError, match="after streaming"):
                engine.register(QueryGraph.path(["A"], name="late"))
            with pytest.raises(QueryError, match="after streaming"):
                engine.warmup(warm_events)
        finally:
            engine.close()

    def test_duplicate_and_disconnected_rejected(self, warm_events):
        engine = ShardedEngine()
        engine.warmup(warm_events)
        engine.register(QueryGraph.path(["A"], name="q"))
        with pytest.raises(QueryError, match="already registered"):
            engine.register(QueryGraph.path(["B"], name="q"))
        disconnected = QueryGraph(name="disc")
        disconnected.add_edge(0, 1, "A")
        disconnected.add_edge(2, 3, "B")
        with pytest.raises(QueryError, match="connected"):
            engine.register(disconnected)

    def test_auto_strategy_resolved_at_register(self, warm_events):
        engine = ShardedEngine()
        engine.warmup(warm_events)
        spec = engine.register(QueryGraph.path(["A", "B"], name="q"))
        assert spec.strategy in ("SingleLazy", "PathLazy")
        assert spec.decision is not None

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ShardedEngine(workers=0)
        with pytest.raises(ValueError):
            ShardedEngine(batch_size=0)
        with pytest.raises(ValueError):
            ShardedEngine(partitioner="magic")

    def test_context_manager_and_limit(self, warm_events):
        with ShardedEngine(window=math.inf, workers=2, batch_size=8) as engine:
            pass  # no queries: start() falls back to serial; run still counts
        engine = ShardedEngine(window=math.inf, workers=2, batch_size=8)
        engine.warmup(warm_events)
        register_two(engine)
        with engine:
            result = engine.run(warm_events, limit=10)
            assert result.edges_processed == 10

    def test_worker_stats_cover_all_queries(self, warm_events):
        engine = ShardedEngine(window=math.inf, workers=2, batch_size=8)
        engine.warmup(warm_events)
        register_two(engine)
        try:
            result = engine.run(warm_events)
            stats = engine.last_worker_stats
            assert len(stats) == 2
            names = sorted(n for s in stats for n in s.query_names)
            assert names == ["ab", "c"]
            assert sum(s.records for s in stats) == len(result.records)
            # type filtering: neither worker needed the full stream twice
            assert sum(s.events_routed for s in stats) <= 2 * len(warm_events)
        finally:
            engine.close()

    def test_describe_shows_shards(self, warm_events):
        engine = ShardedEngine(window=math.inf, workers=2)
        engine.warmup(warm_events)
        register_two(engine)
        text = engine.describe()  # before start: plan only
        assert "shard 0" in text and "queries=[" in text
        try:
            engine.start()
            engine.run(warm_events)
            live = engine.describe()
            assert "worker" in live and "matches=" in live
        finally:
            engine.close()

    def test_close_is_idempotent(self, warm_events):
        engine = ShardedEngine(window=math.inf, workers=2, batch_size=4)
        engine.warmup(warm_events)
        register_two(engine)
        engine.start()
        engine.close()
        engine.close()

    def test_restart_after_close_rejected(self, warm_events):
        # A respawn would get empty worker graphs while edge ids keep
        # counting — not record-identical to anything; must raise.
        engine = ShardedEngine(window=math.inf, workers=2, batch_size=4)
        engine.warmup(warm_events)
        register_two(engine)
        engine.run(warm_events)
        engine.close()
        with pytest.raises(RuntimeError, match="restarted"):
            engine.run(warm_events)
        # and misuse fails at the offending call, not at the next run()
        with pytest.raises(QueryError, match="after streaming"):
            engine.register(QueryGraph.path(["A"], name="late"))
        with pytest.raises(QueryError, match="after streaming"):
            engine.warmup(warm_events)

    def test_unknown_strategy_rejected_at_register(self, warm_events):
        engine = ShardedEngine()
        engine.warmup(warm_events)
        from repro.errors import StrategyError

        with pytest.raises(StrategyError, match="unknown strategy"):
            engine.register(QueryGraph.path(["A"], name="q"), strategy="Magic")

    def test_worker_failure_surfaces(self, warm_events):
        engine = ShardedEngine(window=5.0, workers=2, batch_size=4)
        engine.warmup(warm_events)
        register_two(engine)
        try:
            engine.start()
            # Out-of-order timestamps violate the graph contract inside the
            # workers; the coordinator must surface that as an error rather
            # than hang.
            bad = [
                EdgeEvent("x", "y", "A", 100.0),
                EdgeEvent("x", "y", "B", 1.0),
                EdgeEvent("y", "z", "C", 1.0),
            ] * 10
            with pytest.raises(RuntimeError, match="worker"):
                engine.run(bad)
        finally:
            engine.close()


def _slow_worker_main(init, task_queue, result_queue):
    """A worker that drains its queue slowly but honours the poison pill.

    Stands in for a healthy-but-backlogged worker: with the task queue
    filled to capacity, the old ``close()`` lost its ``("close",)``
    message to ``queue.Full`` and the worker only died via the
    ``terminate()`` backstop (non-zero exit code, after the full join
    timeout). The fixed poison-pill path must reach this loop.
    """
    import time as time_module

    result_queue.put((init.worker_id, "ready", None, init.incarnation))
    while True:
        message = task_queue.get()
        if message[0] == "close":
            return
        time_module.sleep(0.25)


class TestCloseUnderFullQueue:
    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="monkeypatching the worker entry point requires fork",
    )
    def test_close_joins_all_workers_gracefully(self, monkeypatch, warm_events):
        import repro.runtime.sharded as sharded_mod

        monkeypatch.setattr(sharded_mod, "_worker_main", _slow_worker_main)
        engine = ShardedEngine(window=math.inf, workers=2, batch_size=4)
        engine.warmup(warm_events)
        register_two(engine)
        engine.start()
        procs = list(engine._procs)
        assert len(procs) == 2, "test needs real worker processes"
        # Fill every bounded task queue to capacity while the workers
        # crawl: close() must still deliver its pill and join cleanly.
        for task_queue in engine._task_queues:
            while True:
                try:
                    task_queue.put_nowait(("noop",))
                except queue_module.Full:
                    break
        started = time.monotonic()
        engine.close()
        elapsed = time.monotonic() - started
        for proc in procs:
            assert not proc.is_alive(), "close() left a worker running"
            assert proc.exitcode == 0, (
                "worker was terminated instead of receiving the close "
                f"message (exitcode={proc.exitcode})"
            )
        assert elapsed < 4.0, f"close() took {elapsed:.1f}s under a full queue"


class TestGraphBatchIngest:
    def test_add_events_matches_add_event(self):
        from repro.graph.streaming_graph import StreamingGraph

        events = events_for({"A": 5, "B": 3})
        one = StreamingGraph(window=4.0)
        for event in events:
            one.add_event(event)
        batch = StreamingGraph(window=4.0)
        edges = batch.add_events(events)
        assert len(edges) == len(events)
        assert [e.edge_id for e in batch.edges()] == [e.edge_id for e in one.edges()]
        assert batch.snapshot_counts() == one.snapshot_counts()

    def test_pinned_edge_ids(self):
        from repro.errors import GraphError
        from repro.graph.streaming_graph import StreamingGraph

        graph = StreamingGraph()
        edge = graph.add_event(EdgeEvent("a", "b", "A", 1.0), edge_id=7)
        assert edge.edge_id == 7
        nxt = graph.add_event(EdgeEvent("b", "c", "A", 2.0))
        assert nxt.edge_id == 8
        with pytest.raises(GraphError, match="backwards"):
            graph.add_event(EdgeEvent("c", "d", "A", 3.0), edge_id=3)
        # pinned ids must not inflate the insertion tally
        assert graph.total_edges_seen == 2
