"""Tests for the repo-local invariant lint engine (``tools/sa``).

Covers the engine mechanics (suppressions, baseline round-trip, rule
selection, the undeclared-rule guard), every checker against the
red/green fixture trees under ``tests/sa_fixtures/``, the CLI end to
end, and — the acceptance bar — a clean run over the real repo tree.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.sa import (  # noqa: E402
    Checker,
    DEFAULT_CONFIG,
    Finding,
    SAError,
    load_baseline,
    load_project,
    run_checkers,
    save_baseline,
    split_baselined,
)
from tools.sa.__main__ import main  # noqa: E402
from tools.sa.checkers import all_checkers  # noqa: E402
from tools.sa.core import suppressed_rules  # noqa: E402

FIXTURES = REPO_ROOT / "tests" / "sa_fixtures"


def run_fixture_tree(tree: Path):
    project = load_project([tree], DEFAULT_CONFIG, root=tree)
    return run_checkers(project, all_checkers())


# ---------------------------------------------------------------------------
# engine mechanics
# ---------------------------------------------------------------------------


class TestSuppressions:
    def test_same_line(self):
        lines = ["x = 1  # sa: ignore[determinism]"]
        assert suppressed_rules(lines, 1) == {"determinism"}

    def test_line_above(self):
        lines = ["# sa: ignore[hot-attr]", "x = self.a.b"]
        assert suppressed_rules(lines, 2) == {"hot-attr"}

    def test_multiple_rules(self):
        lines = ["x = 1  # sa: ignore[determinism, hot-try]"]
        assert suppressed_rules(lines, 1) == {"determinism", "hot-try"}

    def test_no_comment(self):
        assert suppressed_rules(["x = 1"], 1) == frozenset()

    def test_does_not_leak_to_other_lines(self):
        lines = ["# sa: ignore[determinism]", "a = 1", "b = 2"]
        assert suppressed_rules(lines, 3) == frozenset()

    def test_end_to_end(self, tmp_path):
        bad = "for v in match.data_vertices():  # sa: ignore[determinism]\n"
        target = tmp_path / "isomorphism" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text("def f(match):\n    " + bad + "        pass\n")
        project = load_project([tmp_path], DEFAULT_CONFIG, root=tmp_path)
        assert run_checkers(project, all_checkers()) == []

    def test_wrong_rule_does_not_suppress(self, tmp_path):
        bad = "for v in match.data_vertices():  # sa: ignore[hot-try]\n"
        target = tmp_path / "isomorphism" / "mod.py"
        target.parent.mkdir(parents=True)
        target.write_text("def f(match):\n    " + bad + "        pass\n")
        project = load_project([tmp_path], DEFAULT_CONFIG, root=tmp_path)
        findings = run_checkers(project, all_checkers())
        assert [f.rule for f in findings] == ["determinism"]


class TestBaseline:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = [
            Finding("determinism", "a.py", 3, "iterates a set"),
            Finding("hot-try", "b.py", 7, "try in loop"),
        ]
        save_baseline(path, findings)
        entries = load_baseline(path)
        assert len(entries) == 2
        new, old = split_baselined(findings, entries)
        assert new == [] and len(old) == 2

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == []

    def test_malformed_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"findings": [{"rule": "x"}]}))
        with pytest.raises(SAError):
            load_baseline(path)
        path.write_text("[1, 2]")
        with pytest.raises(SAError):
            load_baseline(path)

    def test_budget_is_a_multiset(self):
        finding = Finding("determinism", "a.py", 3, "iterates a set")
        entries = [{"rule": "determinism", "path": "a.py", "message": "iterates a set"}]
        # The second identical finding exceeds the baseline budget: new.
        new, old = split_baselined([finding, finding], entries)
        assert len(old) == 1 and len(new) == 1

    def test_line_drift_still_matches(self):
        entries = [{"rule": "determinism", "path": "a.py", "message": "m"}]
        drifted = Finding("determinism", "a.py", 99, "m")
        new, old = split_baselined([drifted], entries)
        assert new == [] and old == [drifted]


class TestRunCheckers:
    def test_unknown_rule_select_raises(self, tmp_path):
        (tmp_path / "m.py").write_text("x = 1\n")
        project = load_project([tmp_path], DEFAULT_CONFIG, root=tmp_path)
        with pytest.raises(SAError, match="unknown rule"):
            run_checkers(project, all_checkers(), select=["no-such-rule"])

    def test_select_filters(self):
        findings = run_fixture_tree(FIXTURES / "red")
        project = load_project(
            [FIXTURES / "red"], DEFAULT_CONFIG, root=FIXTURES / "red"
        )
        only = run_checkers(project, all_checkers(), select=["typed-errors"])
        assert {f.rule for f in only} == {"typed-errors"}
        assert len(only) < len(findings)

    def test_undeclared_rule_guard(self, tmp_path):
        class Rogue(Checker):
            name = "rogue"
            rules = ("declared",)

            def check_project(self, project):
                yield Finding("undeclared", "m.py", 1, "boom")

        (tmp_path / "m.py").write_text("x = 1\n")
        project = load_project([tmp_path], DEFAULT_CONFIG, root=tmp_path)
        with pytest.raises(SAError, match="undeclared"):
            run_checkers(project, [Rogue()])

    def test_syntax_error_raises(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        with pytest.raises(SAError, match="cannot parse"):
            load_project([tmp_path], DEFAULT_CONFIG, root=tmp_path)


# ---------------------------------------------------------------------------
# checkers against the fixture trees
# ---------------------------------------------------------------------------


class TestRedFixtures:
    @pytest.fixture(scope="class")
    def findings(self):
        return run_fixture_tree(FIXTURES / "red")

    def test_every_rule_fires(self, findings):
        fired = {f.rule for f in findings}
        assert fired == {
            "determinism",
            "typed-errors",
            "hot-closure",
            "hot-try",
            "hot-strkey",
            "hot-attr",
            "codec-tags",
            "wire-protocol",
            "metrics-schema",
            "env-knobs",
        }

    def test_pr5_data_vertices_regression(self, findings):
        """The PR 5 incident shape — iterating ``Match.data_vertices()``
        in emission-order-sensitive code — MUST be flagged."""
        hits = [
            f
            for f in findings
            if f.rule == "determinism"
            and f.path == "isomorphism/match_order.py"
            and f.line == 10
        ]
        assert len(hits) == 1
        assert "data_vertices_ordered" in hits[0].message

    def test_determinism_sites(self, findings):
        lines = sorted(
            f.line
            for f in findings
            if f.rule == "determinism" and f.path == "isomorphism/match_order.py"
        )
        assert lines == [10, 16, 21]  # for-loop, comprehension, set.pop()

    def test_typed_error_sites(self, findings):
        assert sorted(
            f.line for f in findings if f.rule == "typed-errors"
        ) == [5, 9]

    def test_hot_path_sites(self, findings):
        by_rule = {
            f.rule: f.line
            for f in findings
            if f.path == "search/engine.py"
        }
        assert by_rule == {
            "hot-closure": 8,
            "hot-try": 11,
            "hot-attr": 12,
            "hot-strkey": 17,
        }

    def test_codec_sites(self, findings):
        codec = [f for f in findings if f.rule == "codec-tags"]
        messages = " | ".join(f.message for f in codec)
        assert "_TAG_ORPHAN" in messages
        assert "_dump_orphan" in messages
        assert len(codec) == 3

    def test_wire_protocol_sites(self, findings):
        wire = [f for f in findings if f.rule == "wire-protocol"]
        messages = " | ".join(f.message for f in wire)
        assert "3-tuple" in messages
        assert "'drain'" in messages
        assert "'ack'" in messages
        assert len(wire) == 3

    def test_metrics_schema_sites(self, findings):
        metrics = [f for f in findings if f.rule == "metrics-schema"]
        messages = " | ".join(f.message for f in metrics)
        assert "repro_unknown_gauge" in messages
        assert "repro_stale_total" in messages
        assert "repro_missing_total" in messages
        assert "('q',)" in messages  # label mismatch
        assert len(metrics) == 5

    def test_env_knob_sites(self, findings):
        knobs = [f for f in findings if f.rule == "env-knobs"]
        messages = " | ".join(f.message for f in knobs)
        assert "REPRO_UNDECLARED" in messages
        assert "REPRO_STALE" in messages
        assert len(knobs) == 2

    def test_total(self, findings):
        assert len(findings) == 22


class TestGreenFixtures:
    def test_clean(self):
        assert run_fixture_tree(FIXTURES / "green") == []


# ---------------------------------------------------------------------------
# CLI end to end
# ---------------------------------------------------------------------------


class TestCLI:
    def test_red_exits_nonzero(self, capsys, monkeypatch):
        monkeypatch.chdir(FIXTURES / "red")
        assert main([".", "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "[determinism]" in out and "22 new" in out

    def test_green_exits_zero(self, capsys, monkeypatch):
        monkeypatch.chdir(FIXTURES / "green")
        assert main([".", "--no-baseline"]) == 0
        assert "0 new" in capsys.readouterr().out

    def test_exact_output_single_file(self, capsys, monkeypatch):
        monkeypatch.chdir(FIXTURES / "red")
        code = main(
            ["src/repro/raises.py", "--no-baseline", "--quiet"]
        )
        assert code == 1
        assert capsys.readouterr().out == (
            "src/repro/raises.py:5: [typed-errors] raise RuntimeError in "
            "library code; raise a typed error from the repro.errors "
            "hierarchy instead (embedders catch ReproError)\n"
            "src/repro/raises.py:9: [typed-errors] raise Exception in "
            "library code; raise a typed error from the repro.errors "
            "hierarchy instead (embedders catch ReproError)\n"
        )

    def test_unknown_rule_exits_2(self, capsys, monkeypatch):
        monkeypatch.chdir(FIXTURES / "green")
        assert main([".", "--select", "bogus"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("determinism", "wire-protocol", "env-knobs"):
            assert rule in out

    def test_update_baseline_then_clean(self, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(FIXTURES / "red")
        baseline = tmp_path / "baseline.json"
        assert main([".", "--baseline", str(baseline), "--update-baseline"]) == 0
        capsys.readouterr()
        # With every finding baselined the run passes but reports them.
        assert main([".", "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "22 baselined" in out and "(baselined)" in out


# ---------------------------------------------------------------------------
# the ratchet guard (tools/check_ratchets.py)
# ---------------------------------------------------------------------------


class TestRatchets:
    @staticmethod
    def _make_repo(tmp_path, strict_lines, baseline_findings):
        import subprocess

        (tmp_path / "tools" / "sa").mkdir(parents=True)
        (tmp_path / "tools" / "mypy_strict.txt").write_text(
            "\n".join(strict_lines) + "\n"
        )
        (tmp_path / "tools" / "sa" / "baseline.json").write_text(
            json.dumps({"findings": baseline_findings})
        )
        env = {
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(tmp_path),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        }
        for cmd in (
            ["git", "init", "-q"],
            ["git", "add", "-A"],
            ["git", "commit", "-qm", "seed"],
        ):
            subprocess.run(cmd, cwd=tmp_path, check=True, env=env)
        return tmp_path

    def test_clean_tree_passes(self, tmp_path):
        from tools.check_ratchets import main as ratchet_main

        repo = self._make_repo(tmp_path, ["src/a.py"], [])
        assert ratchet_main(["--repo-root", str(repo)]) == 0

    def test_strict_list_may_grow(self, tmp_path):
        from tools.check_ratchets import main as ratchet_main

        repo = self._make_repo(tmp_path, ["src/a.py"], [])
        (repo / "tools" / "mypy_strict.txt").write_text("src/a.py\nsrc/b.py\n")
        assert ratchet_main(["--repo-root", str(repo)]) == 0

    def test_strict_list_removal_fails(self, tmp_path, capsys):
        from tools.check_ratchets import main as ratchet_main

        repo = self._make_repo(tmp_path, ["src/a.py", "src/b.py"], [])
        (repo / "tools" / "mypy_strict.txt").write_text("src/a.py\n")
        assert ratchet_main(["--repo-root", str(repo)]) == 1
        assert "src/b.py" in capsys.readouterr().err

    def test_baseline_may_shrink_not_grow(self, tmp_path, capsys):
        from tools.check_ratchets import main as ratchet_main

        entry = {"rule": "determinism", "path": "a.py", "message": "m"}
        repo = self._make_repo(tmp_path, ["src/a.py"], [entry])
        baseline = repo / "tools" / "sa" / "baseline.json"
        baseline.write_text(json.dumps({"findings": []}))
        assert ratchet_main(["--repo-root", str(repo)]) == 0
        baseline.write_text(json.dumps({"findings": [entry, entry]}))
        assert ratchet_main(["--repo-root", str(repo)]) == 1
        assert "grew" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# the real tree
# ---------------------------------------------------------------------------


class TestRepoTree:
    def test_repo_is_clean(self, capsys, monkeypatch):
        """Acceptance: ``python -m tools.sa src tools benchmarks`` exits 0."""
        monkeypatch.chdir(REPO_ROOT)
        assert main(["src", "tools", "benchmarks"]) == 0

    def test_checked_in_baseline_is_empty(self):
        """The burndown is done; the baseline may only ever shrink, and it
        has already reached zero — keep it there."""
        entries = load_baseline(REPO_ROOT / "tools" / "sa" / "baseline.json")
        assert entries == []
