"""Unit tests for Expected / Relative Selectivity and distributions."""

import math

import pytest

from repro.stats import (
    LeafSelectivity,
    SelectivityDistribution,
    expected_selectivity,
    log10_or_floor,
    relative_selectivity,
)


def leaf(sel, desc="x", edges=1):
    return LeafSelectivity(description=desc, selectivity=sel, num_edges=edges)


class TestLeafSelectivity:
    def test_validates_range(self):
        with pytest.raises(ValueError):
            leaf(1.5)
        with pytest.raises(ValueError):
            leaf(-0.1)

    def test_boundaries_allowed(self):
        assert leaf(0.0).selectivity == 0.0
        assert leaf(1.0).selectivity == 1.0


class TestExpectedSelectivity:
    def test_product(self):
        assert expected_selectivity([leaf(0.5), leaf(0.2)]) == pytest.approx(0.1)

    def test_empty_product_is_one(self):
        assert expected_selectivity([]) == 1.0

    def test_zero_leaf_zeroes_product(self):
        assert expected_selectivity([leaf(0.5), leaf(0.0)]) == 0.0


class TestRelativeSelectivity:
    def test_equation_two(self):
        t_path = [leaf(0.01, edges=2), leaf(0.1)]
        t_single = [leaf(0.5), leaf(0.5), leaf(0.4)]
        xi = relative_selectivity(t_path, t_single)
        assert xi == pytest.approx((0.01 * 0.1) / (0.5 * 0.5 * 0.4))

    def test_zero_denominator_both_zero(self):
        assert relative_selectivity([leaf(0.0)], [leaf(0.0)]) == 1.0

    def test_zero_denominator_nonzero_numerator(self):
        assert relative_selectivity([leaf(0.5)], [leaf(0.0)]) == math.inf


class TestLog10OrFloor:
    def test_normal_value(self):
        assert log10_or_floor(0.001) == pytest.approx(-3.0)

    def test_zero_clamps(self):
        assert log10_or_floor(0.0) == -12.0

    def test_tiny_value_clamps(self):
        assert log10_or_floor(1e-30) == -12.0

    def test_custom_floor(self):
        assert log10_or_floor(0.0, floor=-5.0) == -5.0


class TestSelectivityDistribution:
    def test_from_items_sorted_ascending(self):
        dist = SelectivityDistribution.from_items([("a", 5), ("b", 1), ("c", 3)])
        assert dist.labels == ("b", "c", "a")
        assert dist.counts == (1, 3, 5)
        assert dist.total == 9

    def test_selectivities_normalised(self):
        dist = SelectivityDistribution.from_items([("a", 3), ("b", 1)])
        assert dist.selectivities() == pytest.approx((0.25, 0.75))

    def test_selectivities_empty(self):
        dist = SelectivityDistribution.from_items([])
        assert dist.selectivities() == ()
        assert dist.total == 0
        assert dist.skew() == 0.0

    def test_skew(self):
        dist = SelectivityDistribution.from_items([("a", 9), ("b", 1)])
        assert dist.skew() == pytest.approx(0.9)

    def test_top(self):
        dist = SelectivityDistribution.from_items([("a", 9), ("b", 1), ("c", 5)])
        assert dist.top(2) == [("a", 9), ("c", 5)]

    def test_len(self):
        assert len(SelectivityDistribution.from_items([("a", 1)])) == 1
