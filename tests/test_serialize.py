"""Unit tests for SJ-Tree ASCII serialization."""

import pytest

from repro.errors import SerializationError
from repro.query import QueryGraph
from repro.sjtree import SJTree, dumps, load, loads, save, leaf_partition_of
from repro.stats import LeafSelectivity


@pytest.fixture
def query():
    return QueryGraph.path(["ESP", "TCP", "ICMP", "GRE"], name="fig8")


@pytest.fixture
def tree(query):
    meta = [
        LeafSelectivity("path[in:ESP ~ out:TCP]", 0.004, 2),
        LeafSelectivity("edge[ICMP]", 0.13, 1),
        LeafSelectivity("edge[GRE]", 0.02, 1),
    ]
    return SJTree.from_leaf_partition(query, [(0, 1), (2,), (3,)], meta)


class TestRoundTrip:
    def test_dumps_loads(self, tree, query):
        text = dumps(tree)
        rebuilt = loads(text, query)
        assert leaf_partition_of(rebuilt) == leaf_partition_of(tree)
        assert rebuilt.expected_selectivity() == pytest.approx(
            tree.expected_selectivity()
        )
        assert [leaf.leaf_label for leaf in rebuilt.leaves()] == [
            leaf.leaf_label for leaf in tree.leaves()
        ]

    def test_save_load_file(self, tree, query, tmp_path):
        path = tmp_path / "fig8.sjtree"
        save(tree, path)
        rebuilt = load(path, query)
        assert leaf_partition_of(rebuilt) == [(0, 1), (2,), (3,)]

    def test_header_present(self, tree):
        assert dumps(tree).startswith("SJTREE v1\n")

    def test_runtime_state_not_serialized(self, tree, query):
        text = dumps(tree)
        assert "Match" not in text
        rebuilt = loads(text, query)
        assert rebuilt.total_partial_matches() == 0

    def test_unknown_selectivity_round_trips(self, query):
        tree = SJTree.from_leaf_partition(query, [(0, 1), (2, 3)])
        rebuilt = loads(dumps(tree), query)
        assert rebuilt.num_leaves == 2


class TestValidation:
    def test_missing_header(self, query):
        with pytest.raises(SerializationError, match="header"):
            loads("nonsense\n", query)

    def test_query_mismatch_detected(self, tree):
        other = QueryGraph.path(["TCP", "ESP", "ICMP", "GRE"])
        with pytest.raises(SerializationError, match="different query"):
            loads(dumps(tree), other)

    def test_malformed_leaf_line(self, tree, query):
        text = dumps(tree).replace("leaf 0 edges 0,1", "leaf 0 banana 0,1")
        with pytest.raises(SerializationError, match="malformed"):
            loads(text, query)

    def test_out_of_order_leaves(self, tree, query):
        lines = dumps(tree).splitlines()
        lines[3], lines[4] = lines[4], lines[3]
        with pytest.raises(SerializationError, match="out of order"):
            loads("\n".join(lines), query)

    def test_no_leaves(self, query):
        text = "SJTREE v1\nquery q\n"
        with pytest.raises(SerializationError, match="no leaves"):
            loads(text, query)

    def test_unexpected_line(self, tree, query):
        text = dumps(tree) + "garbage here\n"
        with pytest.raises(SerializationError, match="unexpected"):
            loads(text, query)
