"""Sharded-runtime ground truth (the parallel runtime's keystone).

:class:`repro.runtime.ShardedEngine` partitions queries across worker
processes and streams each worker only the edge types its shard can
consume. Nothing about that may show in the output: for any stream, any
query mix, any window and any worker count, the merged record stream must
be *identical* — same records, same order, same fingerprints (worker
graphs pin global edge ids), same timestamps — to the single-process
:class:`repro.ContinuousQueryEngine`.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro import ContinuousQueryEngine, ShardedEngine
from repro.analysis.experiments import mixed_etype_workload

from .test_equivalence_property import queries, streams

WORKER_COUNTS = (1, 2, 4)

#: strategy mix cycled over registered queries — covers eager/lazy SJ-Tree
#: search plus the per-edge VF2 baseline under sharding.
STRATEGY_CYCLE = ("Single", "SingleLazy", "Path", "PathLazy", "VF2")


def identities(records):
    return [
        (r.query_name, r.strategy, r.match.fingerprint, r.completed_at)
        for r in records
    ]


def single_process_run(events, query_list, width, strategies):
    engine = ContinuousQueryEngine(window=width, housekeeping_every=5)
    engine.warmup(events)
    for i, query in enumerate(query_list):
        engine.register(query, strategy=strategies[i], name=f"q{i}")
    return engine.run(events)


def sharded_run(events, query_list, width, strategies, workers, **kwargs):
    engine = ShardedEngine(
        window=width,
        workers=workers,
        batch_size=kwargs.pop("batch_size", 7),
        housekeeping_every=5,
        **kwargs,
    )
    engine.warmup(events)
    for i, query in enumerate(query_list):
        engine.register(query, strategy=strategies[i], name=f"q{i}")
    try:
        return engine.run(events)
    finally:
        engine.close()


@settings(max_examples=6, deadline=None)
@given(
    events=streams(),
    query_list=st.lists(queries(), min_size=2, max_size=4),
    window_choice=st.sampled_from(["inf", "wide", "tight"]),
)
def test_sharded_engine_is_record_identical(events, query_list, window_choice):
    """ShardedEngine(workers=k) for k in {1, 2, 4} emits exactly the
    records (and order) of the single-process engine."""
    if not events:
        return
    duration = events[-1].timestamp - events[0].timestamp
    width = {
        "inf": math.inf,
        "wide": max(duration * 0.7, 2.0),
        "tight": max(duration * 0.25, 1.0),
    }[window_choice]
    strategies = [
        STRATEGY_CYCLE[i % len(STRATEGY_CYCLE)] for i in range(len(query_list))
    ]

    base = single_process_run(events, query_list, width, strategies)
    expected = identities(base.records)
    for workers in WORKER_COUNTS:
        result = sharded_run(events, query_list, width, strategies, workers)
        assert result.edges_processed == base.edges_processed
        assert identities(result.records) == expected, (
            f"workers={workers} diverged: {len(result.records)} records "
            f"vs {len(base.records)}"
        )


def _mixed_workload(num_events=700, num_queries=10, num_etypes=24, seed=11):
    """The throughput bench's exact workload shape — same generator
    (:func:`mixed_etype_workload`), denser vertex population."""
    return mixed_etype_workload(
        num_events,
        num_queries=num_queries,
        num_etypes=num_etypes,
        seed=seed,
        population=48,
    )


def test_sharded_matches_single_on_mixed_etype_multi_query_workload():
    """Acceptance workload: mixed-edge-type 10-query stream, finite window,
    k in {1, 2, 4} — record-identical, both partitioners."""
    events, query_list = _mixed_workload()
    strategies = ["Single"] * len(query_list)
    base = single_process_run(events, query_list, 30.0, strategies)
    assert base.records, "workload must produce matches to be meaningful"
    expected = identities(base.records)
    for workers in WORKER_COUNTS:
        for partitioner in ("cost", "round-robin"):
            result = sharded_run(
                events,
                query_list,
                30.0,
                strategies,
                workers,
                batch_size=64,
                partitioner=partitioner,
            )
            assert identities(result.records) == expected, (
                f"workers={workers}, partitioner={partitioner} diverged"
            )


def test_sharded_with_unfiltered_strategy_sees_every_edge():
    """A shard holding a PeriodicVF2 query (relevant_etypes() is None)
    must receive the unfiltered stream — and stay record-identical."""
    events, query_list = _mixed_workload(num_events=300, num_queries=4)
    strategies = ["Single", "PeriodicVF2", "IncIso", "SingleLazy"]
    options = {1: {"period": 25}}

    def register_all(engine):
        for i, query in enumerate(query_list):
            engine.register(
                query,
                strategy=strategies[i],
                name=f"q{i}",
                **options.get(i, {}),
            )

    single = ContinuousQueryEngine(window=math.inf)
    single.warmup(events)
    register_all(single)
    base = single.run(events)

    for workers in (2, 4):
        engine = ShardedEngine(window=math.inf, workers=workers, batch_size=32)
        engine.warmup(events)
        register_all(engine)
        try:
            shards = engine.plan()
            unfiltered = [
                shard
                for shard in shards
                if engine.shard_alphabet(shard) is None
            ]
            assert unfiltered, "the PeriodicVF2 shard must opt out of filtering"
            result = engine.run(events)
        finally:
            engine.close()
        assert identities(result.records) == identities(base.records)


def test_sharded_alphabet_matches_engine_export():
    """The spec-level alphabet (used for routing before workers exist)
    agrees with the live engine's relevant_etypes export, so type-filtered
    batching never starves an algorithm."""
    events, query_list = _mixed_workload(num_events=120, num_queries=4)
    strategies = ["Single", "PeriodicVF2", "VF2", "PathLazy"]
    options = {1: {"period": 25}}

    single = ContinuousQueryEngine(window=math.inf)
    single.warmup(events)
    sharded = ShardedEngine(window=math.inf)
    sharded.warmup(events)
    for i, query in enumerate(query_list):
        opts = options.get(i, {})
        single.register(query, strategy=strategies[i], name=f"q{i}", **opts)
        sharded.register(query, strategy=strategies[i], name=f"q{i}", **opts)
    live = single.query_alphabets()
    for spec in sharded.specs:
        assert spec.alphabet() == live[spec.name]
