"""Unit tests for SJ-Tree structure and UPDATE-SJ-TREE mechanics."""

import math

import pytest

from repro.errors import DecompositionError
from repro.graph import Edge, TimeWindow
from repro.isomorphism import Match
from repro.query import QueryGraph
from repro.sjtree import MatchTable, SJTree, leaf_partition_of
from repro.stats import LeafSelectivity


def edge(eid, src, dst, etype="T", ts=0.0):
    return Edge(edge_id=eid, src=src, dst=dst, etype=etype, timestamp=ts)


def match_for(query, assignment):
    match = Match.build(query.edges_by_id(), assignment)
    assert match is not None
    return match


@pytest.fixture
def query():
    return QueryGraph.path(["T", "T", "T"], name="p3")  # v0->v1->v2->v3


@pytest.fixture
def tree(query):
    meta = [
        LeafSelectivity("l0", 0.01, 1),
        LeafSelectivity("l1", 0.10, 1),
        LeafSelectivity("l2", 0.50, 1),
    ]
    return SJTree.from_leaf_partition(query, [(0,), (1,), (2,)], meta)


class TestMatchTable:
    def test_insert_probe(self):
        table = MatchTable()
        query = QueryGraph.path(["T"])
        m = match_for(query, {0: edge(1, "a", "b")})
        assert table.insert(("b",), m)
        assert table.probe(("b",)) == [m]
        assert table.probe(("zzz",)) == []
        assert len(table) == 1
        assert table.num_buckets() == 1

    def test_duplicate_suppressed(self):
        table = MatchTable()
        query = QueryGraph.path(["T"])
        m = match_for(query, {0: edge(1, "a", "b")})
        assert table.insert(("b",), m)
        assert not table.insert(("b",), m)
        assert table.inserted_total == 1

    def test_expire_drops_old_matches(self):
        table = MatchTable()
        query = QueryGraph.path(["T"])
        old = match_for(query, {0: edge(1, "a", "b", ts=0.0)})
        new = match_for(query, {0: edge(2, "a", "c", ts=10.0)})
        table.insert(("a",), old)
        table.insert(("a",), new)
        assert table.expire(5.0) == 1
        assert len(table) == 1
        assert table.probe(("a",)) == [new]

    def test_expire_boundary_is_strict(self):
        table = MatchTable()
        query = QueryGraph.path(["T"])
        m = match_for(query, {0: edge(1, "a", "b", ts=5.0)})
        table.insert((), m)
        assert table.expire(5.0) == 0  # min_time == cutoff stays (like edges)
        assert table.expire(5.0001) == 1

    def test_reinsertion_allowed_after_expiry(self):
        table = MatchTable()
        query = QueryGraph.path(["T"])
        m = match_for(query, {0: edge(1, "a", "b", ts=0.0)})
        table.insert((), m)
        table.expire(1.0)
        assert table.insert((), m)  # fingerprint was forgotten with the entry

    def test_iteration(self):
        table = MatchTable()
        query = QueryGraph.path(["T"])
        m1 = match_for(query, {0: edge(1, "a", "b")})
        m2 = match_for(query, {0: edge(2, "a", "c")})
        table.insert((), m1)
        table.insert((), m2)
        assert set(table) == {m1, m2}


class TestTreeStructure:
    def test_left_deep_shape(self, tree):
        assert tree.num_leaves == 3
        leaves = tree.leaves()
        assert [leaf.leaf_index for leaf in leaves] == [0, 1, 2]
        root = tree.root
        assert root.edge_ids == frozenset({0, 1, 2})
        right = tree.node(root.right)
        assert right.is_leaf and right.leaf_index == 2
        internal = tree.node(root.left)
        assert internal.edge_ids == frozenset({0, 1})

    def test_cut_vertices(self, tree, query):
        # leaf0 {e0: v0->v1}, leaf1 {e1: v1->v2} share v1
        internal = tree.node(tree.root.left)
        assert internal.cut_vertices == (1,)
        # internal {v0,v1,v2} and leaf2 {v2,v3} share v2
        assert tree.root.cut_vertices == (2,)
        # key_vertices of a node is its parent's cut
        leaf0, leaf1, leaf2 = tree.leaves()
        assert leaf0.key_vertices == (1,)
        assert leaf1.key_vertices == (1,)
        assert leaf2.key_vertices == (2,)
        assert internal.key_vertices == (2,)

    def test_siblings_and_parents(self, tree):
        leaf0, leaf1, leaf2 = tree.leaves()
        assert leaf0.sibling == leaf1.node_id
        assert leaf1.sibling == leaf0.node_id
        internal = tree.node(tree.root.left)
        assert leaf2.sibling == internal.node_id
        assert internal.sibling == leaf2.node_id
        assert internal.parent == tree.root.node_id

    def test_single_leaf_tree(self, query):
        single = QueryGraph.path(["T"])
        tree = SJTree.from_leaf_partition(single, [(0,)])
        assert tree.root.is_leaf and tree.root.is_root

    def test_partition_validation(self, query):
        with pytest.raises(DecompositionError, match="partition"):
            SJTree.from_leaf_partition(query, [(0,), (1,)])
        with pytest.raises(DecompositionError, match="overlap"):
            SJTree.from_leaf_partition(query, [(0, 1), (1, 2)])
        with pytest.raises(DecompositionError, match="empty"):
            SJTree.from_leaf_partition(query, [(0,), (), (1, 2)])
        with pytest.raises(DecompositionError, match="at least one"):
            SJTree.from_leaf_partition(query, [])
        with pytest.raises(DecompositionError, match="length"):
            SJTree.from_leaf_partition(query, [(0,), (1,), (2,)], [])

    def test_expected_selectivity(self, tree):
        assert tree.expected_selectivity() == pytest.approx(0.01 * 0.10 * 0.50)

    def test_leaf_partition_round_trip(self, tree):
        assert leaf_partition_of(tree) == [(0,), (1,), (2,)]

    def test_describe(self, tree):
        text = tree.describe()
        assert "3 leaves" in text
        assert "leaf 0" in text
        assert "cut=(2,)" in text


class TestInsertAndJoin:
    def test_two_leaf_join_emits_at_root(self, query):
        two = QueryGraph.path(["T", "T"])
        tree = SJTree.from_leaf_partition(two, [(0,), (1,)])
        window = TimeWindow()
        sink = []
        m0 = match_for(two, {0: edge(1, "a", "b", ts=0.0)})
        m1 = match_for(two, {1: edge(2, "b", "c", ts=1.0)})
        tree.insert_match(tree.leaf_ids[0], m0, window, sink.append)
        assert sink == []
        tree.insert_match(tree.leaf_ids[1], m1, window, sink.append)
        assert len(sink) == 1
        assert sink[0].query_edge_ids() == frozenset({0, 1})
        assert tree.complete_matches == 1

    def test_join_works_from_either_side(self, query):
        two = QueryGraph.path(["T", "T"])
        window = TimeWindow()
        for order in ((0, 1), (1, 0)):
            tree = SJTree.from_leaf_partition(two, [(0,), (1,)])
            sink = []
            parts = {
                0: match_for(two, {0: edge(1, "a", "b")}),
                1: match_for(two, {1: edge(2, "b", "c")}),
            }
            for leaf_index in order:
                tree.insert_match(
                    tree.leaf_ids[leaf_index], parts[leaf_index], window, sink.append
                )
            assert len(sink) == 1, order

    def test_three_level_propagation(self, tree, query):
        window = TimeWindow()
        sink = []
        parts = [
            match_for(query, {0: edge(1, "a", "b", ts=0.0)}),
            match_for(query, {1: edge(2, "b", "c", ts=1.0)}),
            match_for(query, {2: edge(3, "c", "d", ts=2.0)}),
        ]
        for leaf_id, part in zip(tree.leaf_ids, parts):
            tree.insert_match(leaf_id, part, window, sink.append)
        assert len(sink) == 1
        assert sink[0].vertex_map == {0: "a", 1: "b", 2: "c", 3: "d"}

    def test_duplicate_insert_is_noop(self, tree, query):
        window = TimeWindow()
        sink = []
        m0 = match_for(query, {0: edge(1, "a", "b")})
        assert tree.insert_match(tree.leaf_ids[0], m0, window, sink.append)
        assert not tree.insert_match(tree.leaf_ids[0], m0, window, sink.append)

    def test_window_blocks_wide_joins(self, query):
        two = QueryGraph.path(["T", "T"])
        tree = SJTree.from_leaf_partition(two, [(0,), (1,)])
        window = TimeWindow(5.0)
        window.advance(100.0)
        sink = []
        m0 = match_for(two, {0: edge(1, "a", "b", ts=97.0)})
        m1 = match_for(two, {1: edge(2, "b", "c", ts=100.0)})
        tree.insert_match(tree.leaf_ids[0], m0, window, sink.append)
        tree.insert_match(tree.leaf_ids[1], m1, window, sink.append)
        assert len(sink) == 1  # span 3 < 5
        # now a partner further back than the window
        sink.clear()
        tree2 = SJTree.from_leaf_partition(two, [(0,), (1,)])
        old = match_for(two, {0: edge(3, "x", "y", ts=90.0)})
        new = match_for(two, {1: edge(4, "y", "z", ts=100.0)})
        tree2.insert_match(tree2.leaf_ids[0], old, window, sink.append)
        tree2.insert_match(tree2.leaf_ids[1], new, window, sink.append)
        assert sink == []

    def test_stale_match_rejected_on_insert(self, query):
        two = QueryGraph.path(["T", "T"])
        tree = SJTree.from_leaf_partition(two, [(0,), (1,)])
        window = TimeWindow(5.0)
        window.advance(100.0)  # cutoff 95
        stale = match_for(two, {0: edge(1, "a", "b", ts=90.0)})
        assert not tree.insert_match(tree.leaf_ids[0], stale, window, lambda m: None)

    def test_on_insert_hook_fires_per_node(self, tree, query):
        window = TimeWindow()
        events = []

        def hook(node, match):
            events.append(node.node_id)

        parts = [
            match_for(query, {0: edge(1, "a", "b")}),
            match_for(query, {1: edge(2, "b", "c")}),
        ]
        tree.insert_match(tree.leaf_ids[0], parts[0], window, lambda m: None, hook)
        tree.insert_match(tree.leaf_ids[1], parts[1], window, lambda m: None, hook)
        internal = tree.root.left
        # the hook fires after sibling probing, so the join at the internal
        # node is observed before leaf 1's own insertion hook
        assert events == [tree.leaf_ids[0], internal, tree.leaf_ids[1]]

    def test_accounting(self, tree, query):
        window = TimeWindow()
        m0 = match_for(query, {0: edge(1, "a", "b")})
        tree.insert_match(tree.leaf_ids[0], m0, window, lambda m: None)
        assert tree.total_partial_matches() == 1
        assert tree.space_estimate() == 1  # 1 edge × 1 match
        assert tree.lifetime_inserts() == 1
        tree.reset_state()
        assert tree.total_partial_matches() == 0

    def test_expire_sweep(self, tree, query):
        window = TimeWindow(10.0)
        window.advance(0.0)
        m0 = match_for(query, {0: edge(1, "a", "b", ts=0.0)})
        tree.insert_match(tree.leaf_ids[0], m0, window, lambda m: None)
        window.advance(100.0)
        dropped = tree.expire(window.cutoff)
        assert dropped == 1
        assert tree.total_partial_matches() == 0

    def test_expire_infinite_window_noop(self, tree):
        assert tree.expire(-math.inf) == 0
