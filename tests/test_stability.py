"""Unit tests for the §6.3 selectivity-order stability machinery."""

import math

import pytest

from repro.graph import EdgeEvent
from repro.stats import (
    DistributionTracker,
    drift_score,
    order_agreement,
    rank_correlation,
    rank_stability,
    track_edge_types,
)
from repro.stats.stability import _kendall_tau


def events(types):
    return [EdgeEvent(f"s{i}", f"d{i}", t, float(i)) for i, t in enumerate(types)]


class TestDistributionTracker:
    def test_interval_snapshots_are_not_cumulative(self):
        tracker = DistributionTracker(interval=3)
        for key in ["a", "a", "b", "b", "b", "c"]:
            tracker.observe(key)
        assert len(tracker.snapshots) == 2
        assert tracker.snapshots[0].counts == {"a": 2, "b": 1}
        assert tracker.snapshots[1].counts == {"b": 2, "c": 1}

    def test_flush_closes_partial_interval(self):
        tracker = DistributionTracker(interval=10)
        tracker.observe("a")
        tracker.flush()
        assert len(tracker.snapshots) == 1

    def test_flush_is_idempotent(self):
        tracker = DistributionTracker(interval=10)
        tracker.observe("a")
        tracker.flush()
        tracker.flush()
        assert len(tracker.snapshots) == 1

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            DistributionTracker(interval=0)

    def test_series_fills_missing_with_zero(self):
        tracker = DistributionTracker(interval=2)
        for key in ["a", "a", "b", "b"]:
            tracker.observe(key)
        series = tracker.series()
        assert series["a"] == [2, 0]
        assert series["b"] == [0, 2]

    def test_snapshot_order(self):
        tracker = DistributionTracker(interval=2)
        for key in ["a", "b"]:
            tracker.observe(key)
        assert tracker.snapshots[0].order() == ["a", "b"]


class TestRankCorrelation:
    def test_identical_rankings(self):
        assert rank_correlation(
            {"a": 1, "b": 5}, {"a": 2, "b": 9}
        ) == pytest.approx(1.0)

    def test_reversed_rankings(self):
        tau = rank_correlation({"a": 1, "b": 5}, {"a": 5, "b": 1})
        assert tau == pytest.approx(-1.0)

    def test_single_key_is_stable(self):
        assert rank_correlation({"a": 1}, {"a": 2}) == 1.0

    def test_constant_side_is_stable(self):
        assert rank_correlation({"a": 1, "b": 1}, {"a": 1, "b": 2}) == 1.0

    def test_missing_keys_count_as_zero(self):
        tau = rank_correlation({"a": 5}, {"b": 5})
        assert -1.0 <= tau <= 1.0


class TestRankStability:
    def test_pairwise_series(self):
        tracker = DistributionTracker(interval=2)
        for key in ["a", "b", "a", "b", "b", "a"]:
            tracker.observe(key)
        taus = rank_stability(tracker.snapshots)
        assert len(taus) == len(tracker.snapshots) - 1


class TestOrderAgreement:
    def test_perfectly_stable_stream(self):
        tracker = DistributionTracker(interval=4)
        for _ in range(3):
            for key in ["a", "a", "a", "b"]:
                tracker.observe(key)
        assert order_agreement(tracker.snapshots) == 1.0

    def test_ignore_low_frequency_tail(self):
        snapshots = DistributionTracker(interval=1)
        # two snapshots where only the 1-count tail flips order
        from repro.stats import Snapshot

        a = Snapshot(1, {"hot": 100, "warm": 50, "rare1": 1, "rare2": 2})
        b = Snapshot(2, {"hot": 110, "warm": 40, "rare1": 2, "rare2": 1})
        assert order_agreement([a, b]) < 1.0
        assert order_agreement([a, b], ignore_below=5) == 1.0

    def test_short_series_trivially_stable(self):
        assert order_agreement([]) == 1.0


class TestTrackEdgeTypes:
    def test_convenience_wrapper(self):
        tracker = track_edge_types(events(["T", "T", "U", "U"]), interval=2)
        assert len(tracker.snapshots) == 2
        assert tracker.snapshots[0].counts == {"T": 2}


class TestKendallTauDegenerateRankings:
    def test_all_tied_both_sides_is_nan(self):
        # every pair tied on both axes: zero comparable pairs, tau-b is
        # undefined (scipy and the pure-Python fallback agree)
        assert math.isnan(_kendall_tau([1.0, 1.0, 1.0], [2.0, 2.0, 2.0]))

    def test_one_constant_side_is_nan(self):
        assert math.isnan(_kendall_tau([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]))

    def test_rank_correlation_maps_nan_to_stable(self):
        # a constant ranking cannot *dis*agree with anything — the
        # public wrapper reports it as trivially stable
        assert rank_correlation({"a": 1, "b": 1}, {"a": 1, "b": 2}) == 1.0
        assert rank_correlation({"a": 3, "b": 3}, {"a": 3, "b": 3}) == 1.0


class TestShortSnapshots:
    def test_stream_shorter_than_interval_cuts_nothing_until_flush(self):
        tracker = DistributionTracker(interval=10)
        for key in ["a", "b", "a"]:
            tracker.observe(key)
        assert tracker.snapshots == []
        tracker.flush()
        assert len(tracker.snapshots) == 1
        assert tracker.snapshots[0].end_edge_count == 3
        assert tracker.snapshots[0].counts == {"a": 2, "b": 1}

    def test_single_partial_snapshot_has_empty_stability_series(self):
        tracker = DistributionTracker(interval=10)
        tracker.observe("a")
        tracker.flush()
        assert rank_stability(tracker.snapshots) == []
        assert order_agreement(tracker.snapshots) == 1.0

    def test_trailing_partial_interval_joins_the_series(self):
        tracker = DistributionTracker(interval=3)
        for key in ["a", "a", "b", "a", "a"]:  # one full + one partial
            tracker.observe(key)
        tracker.flush()
        assert len(tracker.snapshots) == 2
        taus = rank_stability(tracker.snapshots)
        assert len(taus) == 1


class TestDriftScore:
    def test_identical_orderings_score_zero(self):
        assert drift_score({"a": 10, "b": 5}, {"a": 20, "b": 9}) == 0.0

    def test_reversed_orderings_score_one(self):
        assert drift_score({"a": 10, "b": 5}, {"a": 5, "b": 10}) == pytest.approx(
            1.0
        )

    def test_fewer_than_two_keys_is_no_drift(self):
        assert drift_score({"a": 10}, {"a": 3}) == 0.0
        assert drift_score({}, {}) == 0.0

    def test_bounded_below_by_zero(self):
        assert drift_score({"a": 1, "b": 2, "c": 3}, {"a": 1, "b": 2, "c": 3}) >= 0.0

    def test_ignore_below_drops_the_fluctuating_tail(self):
        # hot ordering stable; only the 1-2 count tail flips
        before = {"hot": 100, "warm": 50, "rare1": 1, "rare2": 2}
        after = {"hot": 110, "warm": 40, "rare1": 2, "rare2": 1}
        assert drift_score(before, after) > 0.0
        assert drift_score(before, after, ignore_below=5) == 0.0

    def test_ignore_below_keeps_keys_hot_on_either_side(self):
        # "rare" is below the threshold before but hot after — exactly
        # the drift the controller must see, so the filter keeps it
        before = {"hot": 100, "mid": 50, "rare": 1}
        after = {"hot": 100, "mid": 50, "rare": 400}
        assert drift_score(before, after, ignore_below=5) > 0.0

    def test_ignore_below_interacts_with_rank_stability(self):
        # the same tail flip that perturbs the raw per-pair tau series
        # disappears from the thresholded drift score
        tracker = DistributionTracker(interval=8)
        for key in ["hot"] * 5 + ["warm"] * 2 + ["rare1"]:
            tracker.observe(key)
        for key in ["hot"] * 5 + ["warm"] * 2 + ["rare2"]:
            tracker.observe(key)
        taus = rank_stability(tracker.snapshots)
        assert len(taus) == 1 and taus[0] < 1.0
        a, b = tracker.snapshots
        assert drift_score(a.counts, b.counts, ignore_below=2) == 0.0
        assert drift_score(a.counts, b.counts) > 0.0
