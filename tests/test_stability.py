"""Unit tests for the §6.3 selectivity-order stability machinery."""

import pytest

from repro.graph import EdgeEvent
from repro.stats import (
    DistributionTracker,
    order_agreement,
    rank_correlation,
    rank_stability,
    track_edge_types,
)


def events(types):
    return [EdgeEvent(f"s{i}", f"d{i}", t, float(i)) for i, t in enumerate(types)]


class TestDistributionTracker:
    def test_interval_snapshots_are_not_cumulative(self):
        tracker = DistributionTracker(interval=3)
        for key in ["a", "a", "b", "b", "b", "c"]:
            tracker.observe(key)
        assert len(tracker.snapshots) == 2
        assert tracker.snapshots[0].counts == {"a": 2, "b": 1}
        assert tracker.snapshots[1].counts == {"b": 2, "c": 1}

    def test_flush_closes_partial_interval(self):
        tracker = DistributionTracker(interval=10)
        tracker.observe("a")
        tracker.flush()
        assert len(tracker.snapshots) == 1

    def test_flush_is_idempotent(self):
        tracker = DistributionTracker(interval=10)
        tracker.observe("a")
        tracker.flush()
        tracker.flush()
        assert len(tracker.snapshots) == 1

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            DistributionTracker(interval=0)

    def test_series_fills_missing_with_zero(self):
        tracker = DistributionTracker(interval=2)
        for key in ["a", "a", "b", "b"]:
            tracker.observe(key)
        series = tracker.series()
        assert series["a"] == [2, 0]
        assert series["b"] == [0, 2]

    def test_snapshot_order(self):
        tracker = DistributionTracker(interval=2)
        for key in ["a", "b"]:
            tracker.observe(key)
        assert tracker.snapshots[0].order() == ["a", "b"]


class TestRankCorrelation:
    def test_identical_rankings(self):
        assert rank_correlation(
            {"a": 1, "b": 5}, {"a": 2, "b": 9}
        ) == pytest.approx(1.0)

    def test_reversed_rankings(self):
        tau = rank_correlation({"a": 1, "b": 5}, {"a": 5, "b": 1})
        assert tau == pytest.approx(-1.0)

    def test_single_key_is_stable(self):
        assert rank_correlation({"a": 1}, {"a": 2}) == 1.0

    def test_constant_side_is_stable(self):
        assert rank_correlation({"a": 1, "b": 1}, {"a": 1, "b": 2}) == 1.0

    def test_missing_keys_count_as_zero(self):
        tau = rank_correlation({"a": 5}, {"b": 5})
        assert -1.0 <= tau <= 1.0


class TestRankStability:
    def test_pairwise_series(self):
        tracker = DistributionTracker(interval=2)
        for key in ["a", "b", "a", "b", "b", "a"]:
            tracker.observe(key)
        taus = rank_stability(tracker.snapshots)
        assert len(taus) == len(tracker.snapshots) - 1


class TestOrderAgreement:
    def test_perfectly_stable_stream(self):
        tracker = DistributionTracker(interval=4)
        for _ in range(3):
            for key in ["a", "a", "a", "b"]:
                tracker.observe(key)
        assert order_agreement(tracker.snapshots) == 1.0

    def test_ignore_low_frequency_tail(self):
        snapshots = DistributionTracker(interval=1)
        # two snapshots where only the 1-count tail flips order
        from repro.stats import Snapshot

        a = Snapshot(1, {"hot": 100, "warm": 50, "rare1": 1, "rare2": 2})
        b = Snapshot(2, {"hot": 110, "warm": 40, "rare1": 2, "rare2": 1})
        assert order_agreement([a, b]) < 1.0
        assert order_agreement([a, b], ignore_below=5) == 1.0

    def test_short_series_trivially_stable(self):
        assert order_agreement([]) == 1.0


class TestTrackEdgeTypes:
    def test_convenience_wrapper(self):
        tracker = track_edge_types(events(["T", "T", "U", "U"]), interval=2)
        assert len(tracker.snapshots) == 2
        assert tracker.snapshots[0].counts == {"T": 2}
