"""Unit tests for Relative-Selectivity strategy selection."""

import pytest

from repro.errors import EstimationError
from repro.query import QueryGraph
from repro.search import choose_strategy
from repro.stats import SelectivityEstimator

from .util import events_from_tuples


def skewed_estimator():
    """A and B edges are common, but the A→B chain is seen exactly once.

    ξ = Ŝ(T_path)/Ŝ(T_single) is small exactly when a query's 2-edge paths
    are much rarer than the product of their edge frequencies — so the
    fixture provides: 200 disjoint A edges, 200 disjoint B edges, one A→B
    chain (x→y→z), a 200-edge C hub (lots of C~C paths inflating the path
    total) and a 50-edge C chain (so in-C~out-C is seen and common).
    """
    rows = []
    rows += [(f"a{2 * i}", f"a{2 * i + 1}", "A") for i in range(200)]
    rows += [(f"b{2 * i}", f"b{2 * i + 1}", "B") for i in range(200)]
    rows += [("hub", f"h{i}", "C") for i in range(200)]
    rows += [(f"c{i}", f"c{i + 1}", "C") for i in range(50)]
    rows += [("x", "y", "A"), ("y", "z", "B")]
    est = SelectivityEstimator()
    est.observe_events(events_from_tuples(rows))
    return est


class TestChooseStrategy:
    def test_requires_warm_estimator(self):
        with pytest.raises(EstimationError):
            choose_strategy(QueryGraph.path(["A"]), SelectivityEstimator())

    def test_rare_path_query_gets_path_lazy(self):
        est = skewed_estimator()
        query = QueryGraph.path(["A", "B"])
        decision = choose_strategy(query, est)
        assert decision.chosen == "PathLazy"
        assert decision.relative_selectivity < decision.threshold
        assert decision.expected_path < decision.expected_single

    def test_common_path_query_gets_single_lazy(self):
        est = skewed_estimator()
        query = QueryGraph.path(["C", "C"])
        decision = choose_strategy(query, est)
        assert decision.chosen == "SingleLazy"
        assert decision.relative_selectivity >= decision.threshold

    def test_threshold_is_tunable(self):
        est = skewed_estimator()
        query = QueryGraph.path(["C", "C"])
        forced = choose_strategy(query, est, threshold=1e9)
        assert forced.chosen == "PathLazy"

    def test_explain_mentions_decision(self):
        est = skewed_estimator()
        decision = choose_strategy(QueryGraph.path(["C", "C"]), est)
        text = decision.explain()
        assert "SingleLazy" in text
        assert "xi" in text
