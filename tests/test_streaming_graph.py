"""Unit tests for the streaming graph store."""

import math

import pytest

from repro.errors import EdgeNotFoundError, GraphError, VertexNotFoundError
from repro.graph import EdgeEvent, StreamingGraph

from .util import graph_from_tuples


class TestInsertion:
    def test_add_edge_returns_stored_edge(self):
        graph = StreamingGraph()
        edge = graph.add_edge("a", "b", "TCP", 1.0, "ip", "ip")
        assert edge.edge_id == 0
        assert edge.src == "a" and edge.dst == "b"
        assert graph.num_edges == 1
        assert graph.num_vertices == 2

    def test_edge_ids_are_sequential(self):
        graph = graph_from_tuples([("a", "b", "T"), ("b", "c", "T")])
        assert [e.edge_id for e in graph.edges()] == [0, 1]

    def test_multi_edges_are_kept(self):
        graph = graph_from_tuples([("a", "b", "T"), ("a", "b", "T")])
        assert graph.num_edges == 2
        assert len(list(graph.out_edges("a", "T"))) == 2

    def test_out_of_order_events_rejected(self):
        graph = StreamingGraph()
        graph.add_edge("a", "b", "T", 5.0)
        with pytest.raises(GraphError, match="out-of-order"):
            graph.add_edge("b", "c", "T", 4.0)

    def test_vertex_type_first_sight_wins(self):
        graph = StreamingGraph()
        graph.add_event(EdgeEvent("a", "b", "T", 0.0, "ip", "ip"))
        graph.add_event(EdgeEvent("a", "c", "T", 1.0, "host", "host"))
        assert graph.vertex_type("a") == "ip"
        assert graph.vertex_type("c") == "host"

    def test_self_loop(self):
        graph = graph_from_tuples([("a", "a", "T")])
        assert graph.degree("a") == 1
        assert len(list(graph.incident_edges("a"))) == 1


class TestAccessors:
    def test_unknown_vertex_raises(self):
        with pytest.raises(VertexNotFoundError):
            StreamingGraph().vertex_type("nope")

    def test_unknown_edge_raises(self):
        with pytest.raises(EdgeNotFoundError):
            StreamingGraph().edge_by_id(3)

    def test_edge_by_id(self):
        graph = graph_from_tuples([("a", "b", "T")])
        assert graph.edge_by_id(0).src == "a"
        assert graph.has_edge_id(0)
        assert not graph.has_edge_id(1)

    def test_typed_adjacency(self):
        graph = graph_from_tuples([("a", "b", "T"), ("a", "c", "U"), ("d", "a", "T")])
        assert {e.dst for e in graph.out_edges("a")} == {"b", "c"}
        assert {e.dst for e in graph.out_edges("a", "T")} == {"b"}
        assert {e.src for e in graph.in_edges("a", "T")} == {"d"}
        assert set(graph.out_types("a")) == {"T", "U"}
        assert set(graph.in_types("a")) == {"T"}

    def test_incident_edges_reports_self_loop_once(self):
        graph = graph_from_tuples([("a", "a", "T"), ("a", "b", "T")])
        assert len(list(graph.incident_edges("a"))) == 2

    def test_edges_of_type_and_counts(self):
        graph = graph_from_tuples([("a", "b", "T"), ("b", "c", "U"), ("c", "d", "T")])
        assert graph.count_of_type("T") == 2
        assert graph.count_of_type("missing") == 0
        assert {e.etype for e in graph.edges_of_type("T")} == {"T"}
        assert set(graph.edge_types()) == {"T", "U"}

    def test_degree_and_average(self):
        graph = graph_from_tuples([("a", "b", "T"), ("a", "c", "T")])
        assert graph.degree("a") == 2
        assert graph.degree("b") == 1
        assert graph.degree("ghost") == 0
        assert graph.average_degree() == pytest.approx(4 / 3)

    def test_average_degree_empty(self):
        assert StreamingGraph().average_degree() == 0.0

    def test_contains_and_len(self):
        graph = graph_from_tuples([("a", "b", "T")])
        assert "a" in graph and "z" not in graph
        assert len(graph) == 1

    def test_snapshot_counts(self):
        graph = graph_from_tuples([("a", "b", "T"), ("b", "c", "T"), ("c", "d", "U")])
        assert graph.snapshot_counts() == {"T": 2, "U": 1}


class TestEviction:
    def test_expired_edges_are_dropped(self):
        graph = StreamingGraph(window=10.0)
        graph.add_edge("a", "b", "T", 0.0)
        graph.add_edge("b", "c", "T", 5.0)
        graph.add_edge("c", "d", "T", 11.0)  # cutoff becomes 1.0
        assert graph.num_edges == 2
        assert not graph.has_edge_id(0)
        assert graph.evicted_edges == 1
        assert graph.total_edges_seen == 3

    def test_vertex_removed_when_disconnected(self):
        graph = StreamingGraph(window=5.0)
        graph.add_edge("a", "b", "T", 0.0)
        graph.add_edge("c", "d", "T", 10.0)
        assert "a" not in graph and "b" not in graph
        assert graph.num_vertices == 2

    def test_edge_exactly_at_cutoff_survives(self):
        graph = StreamingGraph(window=10.0)
        graph.add_edge("a", "b", "T", 0.0)
        graph.add_edge("b", "c", "T", 10.0)  # cutoff = 0.0; ts 0.0 >= cutoff
        assert graph.num_edges == 2

    def test_adjacency_cleaned_after_eviction(self):
        graph = StreamingGraph(window=1.0)
        graph.add_edge("a", "b", "T", 0.0)
        graph.add_edge("x", "y", "T", 10.0)
        assert list(graph.out_edges("a")) == []
        assert graph.count_of_type("T") == 1

    def test_infinite_window_never_evicts(self):
        graph = StreamingGraph()
        for i in range(50):
            graph.add_edge(i, i + 1, "T", float(i))
        assert graph.num_edges == 50
        assert graph.evicted_edges == 0


class TestNeighborhood:
    def test_hops(self):
        graph = graph_from_tuples(
            [("a", "b", "T"), ("b", "c", "T"), ("c", "d", "T"), ("x", "y", "T")]
        )
        assert graph.neighborhood("a", 1) == {"a", "b"}
        assert graph.neighborhood("a", 2) == {"a", "b", "c"}
        assert graph.neighborhood("a", 9) == {"a", "b", "c", "d"}

    def test_direction_ignored(self):
        graph = graph_from_tuples([("b", "a", "T")])
        assert graph.neighborhood("a", 1) == {"a", "b"}

    def test_missing_vertex(self):
        assert StreamingGraph().neighborhood("a", 3) == set()


class TestInducedCopy:
    def test_preserves_edge_ids(self):
        graph = graph_from_tuples([("a", "b", "T"), ("b", "c", "T"), ("c", "d", "T")])
        sub = graph.induced_copy({"a", "b", "c"})
        assert sorted(e.edge_id for e in sub.edges()) == [0, 1]
        assert sub.num_vertices == 3
        assert sub.vertex_type("a") == "node"

    def test_excludes_boundary_edges(self):
        graph = graph_from_tuples([("a", "b", "T"), ("b", "c", "T")])
        sub = graph.induced_copy({"a", "b"})
        assert sub.num_edges == 1

    def test_copy_is_unwindowed(self):
        graph = graph_from_tuples([("a", "b", "T", 0.0)], window=5.0)
        sub = graph.induced_copy({"a", "b"})
        assert math.isinf(sub.window.width)

    def test_adjacency_in_copy_works(self):
        graph = graph_from_tuples([("a", "b", "T"), ("b", "c", "U")])
        sub = graph.induced_copy({"a", "b", "c"})
        assert {e.dst for e in sub.out_edges("b", "U")} == {"c"}
