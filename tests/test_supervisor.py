"""Self-healing runtime ground truth: crashes must be invisible.

The acceptance bar mirrors the durability suite: a supervised sharded
run in which workers are killed (or stalled, or denied checkpoint
writes) mid-stream must emit records *identical* to the uninterrupted
single-process run — same records, same order. Alongside it: the
restart-policy/backoff unit behaviour, restart-budget exhaustion
surfacing a :class:`~repro.errors.WorkerError` that carries the remote
traceback, replay-buffer bounding via recovery checkpoints, and the
supervision metric families.
"""

from __future__ import annotations

import multiprocessing
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import ContinuousQueryEngine, ShardedEngine
from repro.analysis.experiments import mixed_etype_workload
from repro.errors import WorkerError
from repro.runtime import Fault, FaultPlan, RestartPolicy, backoff_delay

requires_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="poisoning the worker entry point requires fork",
)

#: Fast-recovery policy for tests: near-zero backoff, deterministic.
FAST = {"backoff_base": 0.01, "backoff_cap": 0.02, "jitter": 0.0}


def identities(records):
    return [
        (r.query_name, r.strategy, r.match.fingerprint, r.completed_at)
        for r in records
    ]


@pytest.fixture(scope="module")
def workload():
    events, queries = mixed_etype_workload(
        700, num_queries=9, num_etypes=24, seed=11, population=48
    )
    for i, query in enumerate(queries):
        query.name = f"q{i}"
    return events, queries


@pytest.fixture(scope="module")
def baseline(workload):
    events, queries = workload
    engine = ContinuousQueryEngine(window=30.0, housekeeping_every=5)
    engine.warmup(events)
    for query in queries:
        engine.register(query, strategy="Single", name=query.name)
    expected = identities(engine.run(events).records)
    assert expected, "workload must produce matches to be meaningful"
    return expected


def supervised_run(workload, *, workers, fault_plan=None, policy=None):
    """One supervised sharded run; returns ``(identities, engine)`` with
    the engine still open so callers can inspect telemetry/metrics."""
    events, queries = workload
    engine = ShardedEngine(
        window=30.0,
        workers=workers,
        batch_size=16,
        housekeeping_every=5,
        supervise=True,
        restart_policy=policy,
        fault_plan=fault_plan,
    )
    engine.warmup(events)
    for query in queries:
        engine.register(query, strategy="Single", name=query.name)
    result = engine.run(events)
    return identities(result.records), engine


# ---------------------------------------------------------------------------
# restart policy / backoff units
# ---------------------------------------------------------------------------


class TestRestartPolicy:
    def test_defaults_valid(self):
        policy = RestartPolicy()
        assert policy.max_restarts == 3
        assert policy.replay_buffer_batches >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_restarts": -1},
            {"backoff_base": -0.1},
            {"backoff_factor": 0.5},
            {"backoff_cap": -0.5},
            {"jitter": -0.2},
            {"jitter": 1.5},
            {"stall_timeout": 0.0},
            {"replay_buffer_batches": 0},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RestartPolicy(**kwargs)


class TestBackoff:
    def test_geometric_growth_capped(self):
        policy = RestartPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_cap=0.5, jitter=0.0
        )
        delays = [backoff_delay(policy, attempt) for attempt in (1, 2, 3, 4, 5)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_jitter_bounded(self):
        policy = RestartPolicy(
            backoff_base=0.2, backoff_factor=2.0, backoff_cap=2.0, jitter=0.25
        )
        rng = random.Random(99)
        for attempt in (1, 2, 3):
            base = backoff_delay(
                RestartPolicy(
                    backoff_base=0.2,
                    backoff_factor=2.0,
                    backoff_cap=2.0,
                    jitter=0.0,
                ),
                attempt,
            )
            for _ in range(50):
                delay = backoff_delay(policy, attempt, rng=rng)
                assert base * 0.75 <= delay <= base * 1.25

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError):
            backoff_delay(RestartPolicy(), 0)


# ---------------------------------------------------------------------------
# chaos equivalence (the acceptance bar)
# ---------------------------------------------------------------------------


class TestChaosEquivalence:
    def test_two_kills_across_three_workers_record_identical(
        self, workload, baseline
    ):
        """Kill 2 of 3 workers mid-stream, with a small replay buffer so
        recovery checkpoints, stash filtering and replay dedup are all
        exercised — merged output must be identical."""
        plan = FaultPlan(
            (
                Fault(kind="kill", worker=0, at_event=250),
                Fault(kind="kill", worker=2, at_event=480),
            )
        )
        got, engine = supervised_run(
            workload,
            workers=3,
            fault_plan=plan,
            policy=RestartPolicy(replay_buffer_batches=4, **FAST),
        )
        try:
            assert got == baseline
            telemetry = engine._supervisor.telemetry()
            assert telemetry["restarts"] == {(0, "exit"): 1, (2, "exit"): 1}
            assert telemetry["replayed_batches"] >= 2
        finally:
            engine.close()

    def test_chained_kill_of_respawned_worker(self, workload, baseline):
        """The replacement dies too (incarnation 1 armed): two restarts
        of the same worker, still record-identical."""
        plan = FaultPlan(
            (
                Fault(kind="kill", worker=1, at_event=200),
                Fault(kind="kill", worker=1, at_event=400, incarnation=1),
            )
        )
        got, engine = supervised_run(
            workload,
            workers=3,
            fault_plan=plan,
            policy=RestartPolicy(replay_buffer_batches=8, **FAST),
        )
        try:
            assert got == baseline
            assert engine._supervisor.restarts_by_worker == {1: 2}
        finally:
            engine.close()

    @settings(max_examples=4, deadline=None)
    @given(
        cuts=st.lists(
            st.integers(min_value=30, max_value=650),
            min_size=2,
            max_size=2,
            unique=True,
        ),
        workers=st.sampled_from([2, 3]),
    )
    def test_kill_cut_points_are_invisible(
        self, workload, baseline, cuts, workers
    ):
        """Property: any two kill cut points, on k in {2, 3} workers,
        leave the merged output identical to the single-process run."""
        plan = FaultPlan(
            tuple(
                Fault(kind="kill", worker=i % workers, at_event=cut)
                for i, cut in enumerate(sorted(cuts))
            )
        )
        got, engine = supervised_run(
            workload,
            workers=workers,
            fault_plan=plan,
            policy=RestartPolicy(replay_buffer_batches=6, **FAST),
        )
        try:
            assert got == baseline
            assert engine._supervisor.total_restarts >= 1
        finally:
            engine.close()

    def test_stall_detected_and_recovered(self, workload, baseline):
        """A wedged worker (stall near end of stream, so the sleep
        overlaps the collect) trips the heartbeat-age timeout and is
        replaced; output is unchanged."""
        plan = FaultPlan(
            (Fault(kind="stall", worker=0, at_event=660, stall_seconds=3.0),)
        )
        got, engine = supervised_run(
            workload,
            workers=3,
            fault_plan=plan,
            policy=RestartPolicy(stall_timeout=0.3, **FAST),
        )
        try:
            assert got == baseline
            reasons = {
                reason
                for (_, reason) in engine._supervisor.telemetry()["restarts"]
            }
            assert reasons == {"stall"}
        finally:
            engine.close()

    def test_checkpoint_write_failures_tolerated(self, workload, baseline):
        """Injected recovery-checkpoint failures keep the replay buffer
        growing (no trim) but never corrupt or fail the run."""
        plan = FaultPlan(
            (Fault(kind="checkpoint_fail", worker=0, times=2),)
        )
        got, engine = supervised_run(
            workload,
            workers=3,
            fault_plan=plan,
            policy=RestartPolicy(replay_buffer_batches=3, **FAST),
        )
        try:
            assert got == baseline
            telemetry = engine._supervisor.telemetry()
            assert telemetry["checkpoint_failures"] == 2
            assert telemetry["recovery_checkpoints"] >= 1
        finally:
            engine.close()


# ---------------------------------------------------------------------------
# replay-buffer bounding
# ---------------------------------------------------------------------------


class TestReplayBufferBounding:
    def test_buffer_trimmed_by_recovery_checkpoints(self, workload, baseline):
        """With a tiny buffer bound the supervisor must keep trimming via
        recovery checkpoints instead of buffering the whole stream."""
        got, engine = supervised_run(
            workload,
            workers=3,
            policy=RestartPolicy(replay_buffer_batches=2, **FAST),
        )
        try:
            assert got == baseline
            telemetry = engine._supervisor.telemetry()
            assert telemetry["recovery_checkpoints"] >= 3
            for depth in telemetry["replay_depth"].values():
                assert depth <= 2
        finally:
            engine.close()


# ---------------------------------------------------------------------------
# restart-budget exhaustion
# ---------------------------------------------------------------------------


def _poisoned_process_rows(threshold):
    original = ContinuousQueryEngine.process_rows

    def poisoned(self, rows):
        rows = list(rows)
        if rows and rows[-1][0] >= threshold:
            raise RuntimeError(f"poison pill at edge {threshold}")
        return original(self, rows)

    return poisoned


@requires_fork
class TestRestartBudget:
    def test_exhaustion_surfaces_worker_error_with_remote_traceback(
        self, workload, monkeypatch
    ):
        """A deterministic failure (re-raised on every replay) burns the
        restart budget and fails fast with the worker's own traceback."""
        events, queries = workload
        monkeypatch.setattr(
            ContinuousQueryEngine,
            "process_rows",
            _poisoned_process_rows(300),
        )
        engine = ShardedEngine(
            window=30.0,
            workers=3,
            batch_size=16,
            housekeeping_every=5,
            supervise=True,
            restart_policy=RestartPolicy(max_restarts=1, **FAST),
        )
        engine.warmup(events)
        for query in queries:
            engine.register(query, strategy="Single", name=query.name)
        try:
            with pytest.raises(WorkerError) as excinfo:
                engine.run(events)
        finally:
            engine.close()
        error = excinfo.value
        assert "restart budget" in str(error)
        assert error.remote_traceback is not None
        assert "poison pill at edge 300" in error.remote_traceback
        assert error.worker_id is not None

    def test_zero_budget_fails_on_first_death(self, workload):
        events, queries = workload
        plan = FaultPlan((Fault(kind="kill", worker=0, at_event=200),))
        engine = ShardedEngine(
            window=30.0,
            workers=2,
            batch_size=16,
            housekeeping_every=5,
            supervise=True,
            restart_policy=RestartPolicy(max_restarts=0, **FAST),
            fault_plan=plan,
        )
        engine.warmup(events)
        for query in queries:
            engine.register(query, strategy="Single", name=query.name)
        try:
            with pytest.raises(WorkerError, match="restart budget"):
                engine.run(events)
        finally:
            engine.close()


# ---------------------------------------------------------------------------
# supervision metric families
# ---------------------------------------------------------------------------


class TestSupervisionMetrics:
    def test_restart_and_replay_families_reported(self, workload, baseline):
        plan = FaultPlan(
            (
                Fault(kind="kill", worker=0, at_event=250),
                Fault(kind="kill", worker=1, at_event=450),
            )
        )
        got, engine = supervised_run(
            workload,
            workers=3,
            fault_plan=plan,
            policy=RestartPolicy(replay_buffer_batches=4, **FAST),
        )
        try:
            assert got == baseline
            registry = engine.metrics()
            text = registry.render_prometheus()
        finally:
            engine.close()
        assert 'repro_runtime_worker_restarts_total{worker="0",reason="exit"} 1' in text
        assert 'repro_runtime_worker_restarts_total{worker="1",reason="exit"} 1' in text
        assert "repro_runtime_replayed_batches_total" in text
        assert "repro_runtime_recovery_checkpoints_total" in text
        assert "repro_runtime_replay_buffer_batches" in text
        assert "repro_runtime_recovery_seconds" in text
