"""Telemetry subsystem: registry primitives, instrumentation, exposition.

Covers the dependency-free metric slots (counter/gauge/fixed-bucket
histogram), snapshot round-trips and cross-worker merges, the
per-layer registry builders (`engine.metrics()` /
`ShardedEngine.metrics()`), the JSONL emitter + schema validator, and
the stdlib HTTP exposition thread.
"""

from __future__ import annotations

import json
import math
import urllib.error
import urllib.request

import pytest

from repro import ContinuousQueryEngine, ShardedEngine
from repro.analysis.experiments import mixed_etype_workload
from repro.telemetry import (
    SECONDS_BUCKETS,
    HistogramSlot,
    MetricsHTTPServer,
    MetricsJSONLWriter,
    MetricsRegistry,
    render_prometheus,
    validate_jsonl_file,
    validate_jsonl_lines,
    validate_snapshot,
)


@pytest.fixture(scope="module")
def workload():
    events, queries = mixed_etype_workload(
        500, num_queries=4, num_etypes=12, seed=5, population=40
    )
    for i, query in enumerate(queries):
        query.name = f"q{i}"
    return events, queries


def _single_engine(workload, **kwargs):
    events, queries = workload
    engine = ContinuousQueryEngine(window=60.0, **kwargs)
    engine.warmup(events[:100])
    for query in queries:
        engine.register(query, strategy="auto")
    engine.run(events)
    return engine


def _samples(snapshot, family):
    return {tuple(s["labels"]): s for s in snapshot[family]["samples"]}


# ---------------------------------------------------------------------------
# registry primitives
# ---------------------------------------------------------------------------


class TestHistogramSlot:
    def test_upper_bounds_are_inclusive(self):
        slot = HistogramSlot((1.0, 5.0))
        slot.observe(1.0)  # == bound -> that bucket (Prometheus le semantics)
        slot.observe(1.5)
        slot.observe(7.0)  # beyond last bound -> overflow slot
        assert slot.counts == [1, 1, 1]
        assert slot.count == 3
        assert slot.sum == pytest.approx(9.5)

    def test_bounds_are_sorted_on_construction(self):
        assert HistogramSlot((5.0, 1.0)).bounds == (1.0, 5.0)

    def test_merge_sums_buckets(self):
        a, b = HistogramSlot((1.0,)), HistogramSlot((1.0,))
        a.observe(0.5)
        b.observe(2.0)
        b.observe(0.25)
        a.merge(b)
        assert a.counts == [2, 1] and a.count == 3

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError, match="bounds differ"):
            HistogramSlot((1.0,)).merge(HistogramSlot((2.0,)))


class TestMetricsRegistry:
    def test_label_arity_is_checked(self):
        reg = MetricsRegistry()
        family = reg.counter("c", labels=("a", "b"))
        with pytest.raises(ValueError, match="expected 2 label values"):
            family.labels("only-one")

    def test_family_constructors_are_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")
        with pytest.raises(ValueError, match="registered as counter"):
            reg.gauge("c")

    def test_collect_from_snapshot_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("hits", "help text", labels=("query",)).labels("q1").inc(3)
        reg.gauge("depth", agg="max").slot.set(7.5)
        reg.histogram("lat", SECONDS_BUCKETS).slot.observe(0.002)
        snap = reg.collect()
        assert MetricsRegistry.from_snapshot(snap).collect() == snap
        # snapshots must survive a JSON round-trip (queue / JSONL transport)
        assert json.loads(json.dumps(snap)) == snap

    def test_merge_sums_counters_and_honours_gauge_agg(self):
        def snap(counter, gsum, gmax):
            reg = MetricsRegistry()
            reg.counter("c").slot.inc(counter)
            reg.gauge("g_sum").slot.set(gsum)
            reg.gauge("g_max", agg="max").slot.set(gmax)
            return reg.collect()

        merged = MetricsRegistry.merge_snapshots([snap(1, 10, 3), snap(2, 20, 9)])
        assert merged["c"]["samples"][0]["value"] == 3
        assert merged["g_sum"]["samples"][0]["value"] == 30
        assert merged["g_max"]["samples"][0]["value"] == 9

    def test_merge_unions_label_sets_and_sorts_samples(self):
        def snap(worker):
            reg = MetricsRegistry()
            reg.counter("routed", labels=("worker",)).labels(worker).inc(1)
            return reg.collect()

        merged = MetricsRegistry.merge_snapshots([snap("1"), snap("0"), snap("1")])
        assert [s["labels"] for s in merged["routed"]["samples"]] == [["0"], ["1"]]
        assert _samples(merged, "routed")[("1",)]["value"] == 2

    def test_merge_combines_histograms(self):
        def snap(value):
            reg = MetricsRegistry()
            reg.histogram("lat", (1.0,)).slot.observe(value)
            return reg.collect()

        merged = MetricsRegistry.merge_snapshots([snap(0.5), snap(2.0)])
        sample = merged["lat"]["samples"][0]
        assert sample["counts"] == [1, 1] and sample["count"] == 2

    def test_merge_rejects_mismatched_histogram_bounds(self):
        def snap(bound):
            reg = MetricsRegistry()
            reg.histogram("lat", (bound,)).slot.observe(0.5)
            return reg.collect()

        with pytest.raises(ValueError, match="bounds differ"):
            MetricsRegistry.merge_snapshots([snap(1.0), snap(2.0)])


class TestPrometheusRendering:
    def test_counter_gauge_and_escaping(self):
        reg = MetricsRegistry()
        reg.counter("hits", "total hits", labels=("q",)).labels('a"b\\c\nd').inc(2)
        reg.gauge("width").slot.set(math.inf)
        text = reg.render_prometheus()
        assert "# HELP hits total hits" in text
        assert "# TYPE hits counter" in text
        assert 'hits{q="a\\"b\\\\c\\nd"} 2' in text
        assert "width +Inf" in text

    def test_histogram_buckets_accumulate(self):
        reg = MetricsRegistry()
        slot = reg.histogram("lat", (1.0, 5.0)).slot
        for value in (0.5, 2.0, 9.0):
            slot.observe(value)
        text = render_prometheus(reg.collect())
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="5"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text


# ---------------------------------------------------------------------------
# engine instrumentation
# ---------------------------------------------------------------------------


class TestEngineMetrics:
    @pytest.fixture(scope="class")
    def engine(self, workload):
        return _single_engine(workload, profile_phases=True)

    def test_snapshot_is_valid_and_json_safe(self, engine):
        snap = engine.metrics().collect()
        validate_snapshot(snap)
        json.dumps(snap)  # queue/JSONL transport safety
        assert "# TYPE repro_engine_edges_ingested_total counter" in (
            render_prometheus(snap)
        )

    def test_totals_match_engine_state(self, workload, engine):
        events, queries = workload
        snap = engine.metrics().collect()
        ingested = snap["repro_engine_edges_ingested_total"]["samples"][0]["value"]
        assert ingested == engine.graph.total_edges_seen
        live = snap["repro_graph_live_edges"]["samples"][0]["value"]
        assert live == engine.graph.num_edges
        matches = _samples(snap, "repro_engine_matches_total")
        assert set(matches) == {(q.name,) for q in queries}
        for name, registered in engine.queries.items():
            assert matches[(name,)]["value"] == registered.algorithm.matches_emitted

    def test_profile_phases_flow_into_stage_and_query_families(self, engine):
        snap = engine.metrics().collect()
        stages = _samples(snap, "repro_engine_stage_seconds_total")
        assert {("evict",), ("ingest",)} <= set(stages)
        phases = _samples(snap, "repro_engine_query_phase_seconds_total")
        assert phases, "per-query iso/join split must be populated"
        assert snap["repro_engine_profile_enabled"]["samples"][0]["value"] == 1.0

    def test_sjtree_residency_per_node(self, engine):
        snap = engine.metrics().collect()
        residency = _samples(snap, "repro_sjtree_node_residency")
        inserts = _samples(snap, "repro_sjtree_node_inserts_total")
        assert residency and set(residency) == set(inserts)
        # labels are (query, node_id:leaf-or-join)
        assert all(":" in node for _, node in residency)

    def test_checkpoint_populates_persistence_family(self, workload, tmp_path):
        engine = _single_engine(workload)
        engine.checkpoint(tmp_path / "snap.bin", cursor=500)
        snap = engine.metrics().collect()
        assert snap["repro_persistence_checkpoints_total"]["samples"][0]["value"] == 1
        seconds = snap["repro_persistence_checkpoint_seconds"]["samples"][0]
        assert seconds["count"] == 1
        assert (
            snap["repro_persistence_last_checkpoint_bytes"]["samples"][0]["value"] > 0
        )


# ---------------------------------------------------------------------------
# sharded aggregation
# ---------------------------------------------------------------------------


class TestShardedMetrics:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_aggregated_snapshot_covers_all_layers(self, workload, workers):
        events, queries = workload
        engine = ShardedEngine(window=60.0, workers=workers, batch_size=128)
        try:
            engine.warmup(events[:100])
            for query in queries:
                engine.register(query, strategy="auto")
            engine.run(events)
            snap = engine.metrics().collect()
        finally:
            engine.close()
        validate_snapshot(snap, expect_runtime=True)
        assert snap["repro_runtime_workers"]["samples"][0]["value"] == workers
        streamed = snap["repro_runtime_events_streamed_total"]["samples"][0]["value"]
        assert streamed == len(events)
        alive = _samples(snap, "repro_runtime_worker_alive")
        assert set(alive) == {(str(i),) for i in range(workers)}
        assert all(s["value"] == 1.0 for s in alive.values())
        depth = _samples(snap, "repro_runtime_worker_queue_depth")
        assert set(depth) == set(alive)
        assert all(s["value"] >= -1 for s in depth.values())
        heartbeat = _samples(snap, "repro_runtime_worker_heartbeat_age_seconds")
        assert all(s["value"] >= 0.0 for s in heartbeat.values())
        # per-shard engines only ingest the edges routed to their queries,
        # so the aggregated counter is bounded by workers * events
        ingested = snap["repro_engine_edges_ingested_total"]["samples"][0]["value"]
        assert 0 < ingested <= workers * len(events)

    def test_metrics_after_close_raises(self, workload):
        events, queries = workload
        engine = ShardedEngine(window=60.0, workers=2, batch_size=128)
        engine.warmup(events[:100])
        for query in queries:
            engine.register(query, strategy="auto")
        engine.run(events[:200])
        engine.close()
        with pytest.raises(RuntimeError):
            engine.metrics()


# ---------------------------------------------------------------------------
# exposition: JSONL + schema validation
# ---------------------------------------------------------------------------


class TestJSONLAndSchema:
    def test_writer_emits_validating_stream(self, workload, tmp_path):
        events, queries = workload
        engine = ContinuousQueryEngine(window=60.0)
        engine.warmup(events[:100])
        for query in queries:
            engine.register(query, strategy="auto")
        path = tmp_path / "metrics.jsonl"
        cuts = (200, 400, len(events))
        with MetricsJSONLWriter(path) as writer:
            for start, cut in zip((0,) + cuts, cuts):
                engine.run(events[start:cut])
                writer.emit(engine.metrics().collect(), events_processed=cut)
        envelopes = validate_jsonl_file(path, expect_final_events=len(events))
        assert [e["seq"] for e in envelopes] == [0, 1, 2]
        assert envelopes[-1]["events_processed"] == len(events)

    def test_broken_seq_rejected(self):
        snap = _engine_like_snapshot()
        good = json.dumps(
            {"seq": 0, "unix_time": 0.0, "events_processed": 1, "families": snap}
        )
        bad = json.dumps(
            {"seq": 5, "unix_time": 0.0, "events_processed": 2, "families": snap}
        )
        with pytest.raises(ValueError, match="seq"):
            validate_jsonl_lines([good, bad])

    def test_decreasing_counter_rejected(self):
        first = _engine_like_snapshot(ingested=10)
        second = _engine_like_snapshot(ingested=4)
        lines = [
            json.dumps(
                {"seq": i, "unix_time": 0.0, "events_processed": 10, "families": f}
            )
            for i, f in enumerate([first, second])
        ]
        with pytest.raises(ValueError, match="decreased"):
            validate_jsonl_lines(lines)

    def test_missing_family_rejected(self):
        snap = _engine_like_snapshot()
        del snap["repro_graph_live_edges"]
        line = json.dumps(
            {"seq": 0, "unix_time": 0.0, "events_processed": 0, "families": snap}
        )
        with pytest.raises(ValueError, match="missing required family"):
            validate_jsonl_lines([line])

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError, match="no snapshots"):
            validate_jsonl_lines([])


class TestAutoscaleSchema:
    def test_valid_autoscale_snapshot_passes(self):
        snap = _autoscale_like_snapshot()
        validate_snapshot(snap, expect_autoscale=True)

    def test_missing_autoscale_families_rejected(self):
        snap = _engine_like_snapshot()
        with pytest.raises(ValueError, match="missing required family"):
            validate_snapshot(snap, expect_autoscale=True)

    def test_workers_gauge_outside_band_rejected(self):
        snap = _autoscale_like_snapshot(workers=7, low=1, high=4)
        with pytest.raises(ValueError, match="outside band"):
            validate_snapshot(snap)

    def test_workers_gauge_without_band_rejected(self):
        snap = _autoscale_like_snapshot()
        del snap["repro_runtime_autoscale_min_workers"]
        with pytest.raises(ValueError, match="min/max band"):
            validate_snapshot(snap)

    def test_decisions_exceeding_evaluations_rejected(self):
        snap = _autoscale_like_snapshot(
            evaluations=2, decided={"rebalance": 2, "scale_down": 1}
        )
        with pytest.raises(ValueError, match="exceed evaluations"):
            validate_snapshot(snap)

    def test_band_checked_even_without_expect_flag(self):
        # the gauges travel together: any snapshot carrying them is
        # held to the cross-family invariants
        snap = _autoscale_like_snapshot(workers=0, low=1, high=4)
        with pytest.raises(ValueError, match="outside band"):
            validate_snapshot(snap)

    def test_rebalance_boundary_excuses_worker_counter_reset(self):
        # a layout re-cut renormalizes worker-side lifetime counters;
        # the decrease is sanctioned exactly when the coordinator's
        # rebalance counter ticked on the same transition
        before = _autoscale_like_snapshot(ingested=100, rebalances=0)
        after = _autoscale_like_snapshot(ingested=40, rebalances=1)
        validate_jsonl_lines(_envelope_lines(before, after))

    def test_worker_counter_reset_without_rebalance_rejected(self):
        before = _autoscale_like_snapshot(ingested=100, rebalances=1)
        after = _autoscale_like_snapshot(ingested=40, rebalances=1)
        with pytest.raises(ValueError, match="decreased"):
            validate_jsonl_lines(_envelope_lines(before, after))

    def test_coordinator_counter_must_stay_monotone_across_rebalance(self):
        # repro_runtime_* counters live in the coordinator and survive
        # re-cuts — a decrease there is a real bug even mid-rebalance
        before = _autoscale_like_snapshot(
            ingested=100, rebalances=0, evaluations=5
        )
        after = _autoscale_like_snapshot(ingested=100, rebalances=1, evaluations=3)
        with pytest.raises(ValueError, match="decreased"):
            validate_jsonl_lines(_envelope_lines(before, after))


def _envelope_lines(*family_dicts):
    return [
        json.dumps(
            {"seq": i, "unix_time": 0.0, "events_processed": 10, "families": f}
        )
        for i, f in enumerate(family_dicts)
    ]


def _autoscale_like_snapshot(
    ingested=10,
    rebalances=0,
    workers=2,
    low=1,
    high=4,
    evaluations=3,
    decided=None,
):
    """Engine families + the coordinator's autoscale/rebalance group."""
    snap = _engine_like_snapshot(ingested=ingested)
    reg = MetricsRegistry()
    reg.counter("repro_runtime_rebalances_total").slot.inc(rebalances)
    reg.gauge("repro_runtime_autoscale_workers", agg="max").slot.set(workers)
    reg.gauge("repro_runtime_autoscale_min_workers", agg="max").slot.set(low)
    reg.gauge("repro_runtime_autoscale_max_workers", agg="max").slot.set(high)
    reg.counter("repro_runtime_autoscale_evaluations_total").slot.inc(evaluations)
    decisions = reg.counter(
        "repro_runtime_autoscale_decisions_total", labels=("action",)
    )
    for action, count in (decided or {}).items():
        decisions.labels(action).inc(count)
    snap.update(reg.collect())
    return snap


def _engine_like_snapshot(ingested=10):
    """A minimal snapshot carrying every required engine family."""
    reg = MetricsRegistry()
    reg.counter("repro_engine_edges_ingested_total").slot.inc(ingested)
    reg.counter("repro_engine_edges_evicted_total")
    reg.counter("repro_engine_chunks_processed_total").slot.inc(2)
    reg.counter("repro_engine_matches_total", labels=("query",)).labels("q").inc(1)
    reg.gauge("repro_engine_partial_matches", labels=("query",)).labels("q").set(3)
    reg.gauge("repro_graph_live_edges").slot.set(ingested)
    reg.gauge("repro_graph_live_vertices").slot.set(4)
    reg.gauge("repro_graph_window_width_seconds", agg="max").slot.set(60.0)
    reg.counter("repro_persistence_checkpoints_total")
    return reg.collect()


# ---------------------------------------------------------------------------
# exposition: HTTP
# ---------------------------------------------------------------------------


class TestHTTPServer:
    def test_serves_prometheus_and_json(self):
        snap = _engine_like_snapshot(ingested=42)
        server = MetricsHTTPServer(lambda: snap, port=0)
        server.start()
        try:
            base = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(f"{base}/metrics", timeout=5) as resp:
                assert resp.headers["Content-Type"].startswith("text/plain")
                text = resp.read().decode("utf-8")
            assert "repro_engine_edges_ingested_total 42" in text
            with urllib.request.urlopen(f"{base}/metrics.json", timeout=5) as resp:
                assert json.load(resp) == snap
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{base}/nope", timeout=5)
            assert excinfo.value.code == 404
        finally:
            server.close()

    def test_close_is_idempotent(self):
        server = MetricsHTTPServer(dict, port=0)
        server.start()
        server.close()
        server.close()
