"""Empirical checks of the paper's analytical claims (§5.2).

* Theorem 1/2: searching the rarest primitive first and ordering leaves by
  ascending frequency minimises stored partial matches.
* Observation/§6.4: Lazy search stores no more partial matches than eager
  search, and strictly fewer when the frequent primitive dominates.
* §6.4.1: subgraph isomorphism dominates processing time for SJ-Tree
  strategies (the >95% claim, relaxed for Python constant factors).
"""



from repro.graph import StreamingGraph
from repro.query import QueryGraph
from repro.search import DynamicGraphSearch, LazySearch
from repro.sjtree import SJTree
from repro.stats import LeafSelectivity

from .util import events_from_tuples


def skewed_stream(num_common=300, num_rare=3, seed_offset=0):
    """COMMON edges everywhere; a few RARE edges that start matches."""
    rows = []
    for i in range(num_common):
        rows.append((f"h{i % 50}", f"h{(i * 7 + 1) % 50}", "COMMON", float(i)))
    for j in range(num_rare):
        ts = float(num_common + j)
        rows.append((f"h{j}", f"h{j + 10}", "RARE", ts))
    return events_from_tuples(rows)


def run_with_tree(leaf_order, lazy, **options):
    """Run a RARE→COMMON 2-edge query with an explicit leaf order."""
    query = QueryGraph.path(["RARE", "COMMON"], name="t2")
    meta = {
        (0,): LeafSelectivity("edge[RARE]", 0.01, 1),
        (1,): LeafSelectivity("edge[COMMON]", 0.99, 1),
    }
    tree = SJTree.from_leaf_partition(
        query, leaf_order, [meta[tuple(leaf)] for leaf in leaf_order]
    )
    graph = StreamingGraph()
    search = (
        LazySearch(graph, tree, **options)
        if lazy
        else DynamicGraphSearch(graph, tree, **options)
    )
    found = []
    for event in skewed_stream():
        edge = graph.add_event(event)
        found.extend(search.process_edge(edge))
    return search, found


class TestTheorem2SpaceOrdering:
    def test_rare_first_stores_fewer_partials_lazy(self):
        rare_first, found_a = run_with_tree([(0,), (1,)], lazy=True)
        common_first, found_b = run_with_tree([(1,), (0,)], lazy=True)
        assert {m.fingerprint for m in found_a} == {m.fingerprint for m in found_b}
        assert (
            rare_first.tree.lifetime_inserts()
            < common_first.tree.lifetime_inserts()
        )

    def test_rare_first_lifetime_state_is_small(self):
        search, _ = run_with_tree([(0,), (1,)], lazy=True)
        # only RARE matches plus COMMON matches in enabled neighbourhoods
        # enter the tables — a small fraction of the 300 COMMON edges
        assert search.tree.lifetime_inserts() < 150


class TestLazyVsEagerState:
    def test_lazy_never_stores_more(self):
        lazy, found_lazy = run_with_tree([(0,), (1,)], lazy=True)
        eager, found_eager = run_with_tree([(0,), (1,)], lazy=False)
        assert {m.fingerprint for m in found_lazy} == {
            m.fingerprint for m in found_eager
        }
        assert lazy.tree.lifetime_inserts() <= eager.tree.lifetime_inserts()

    def test_lazy_is_dramatically_smaller_on_skewed_data(self):
        lazy, _ = run_with_tree([(0,), (1,)], lazy=True)
        eager, _ = run_with_tree([(0,), (1,)], lazy=False)
        # eager tracks every COMMON edge; lazy tracks only enabled regions
        assert lazy.tree.lifetime_inserts() * 3 < eager.tree.lifetime_inserts()


class TestProfileSplit:
    def test_iso_phase_present_for_eager(self):
        # §6.4.1's "iso dominates" claim describes the interpretive
        # backtracker; run the legacy path (the compiled plans shrink the
        # iso phase below the join phase on this toy stream — the point of
        # the optimisation).
        eager, _ = run_with_tree([(0,), (1,)], lazy=False, compiled_plans=False)
        iso = eager.profile.seconds("iso")
        join = eager.profile.seconds("join")
        assert iso > 0.0
        # eager search spends most time in anchored isomorphism probes
        assert iso > join

    def test_compiled_plans_preserve_output_and_profile_shape(self):
        """The compiled fast path finds the same matches and still buckets
        its time into the iso/join phases (wall-clock comparisons on this
        toy stream are noise, so only the structure is asserted)."""
        legacy, found_legacy = run_with_tree(
            [(0,), (1,)], lazy=False, compiled_plans=False
        )
        fast, found_fast = run_with_tree([(0,), (1,)], lazy=False)
        assert {m.fingerprint for m in found_fast} == {
            m.fingerprint for m in found_legacy
        }
        assert fast.profile.seconds("iso") > 0.0
        assert fast.profile.counters["leaf_matches"] == (
            legacy.profile.counters["leaf_matches"]
        )
