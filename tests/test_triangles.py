"""Unit + property tests for triangle statistics (§5.1/§7 extension)."""

import itertools
import random

import pytest

from repro.stats.triangles import (
    BirthdayTriangleEstimator,
    count_triangles,
    total_triangles,
)

from .util import graph_from_tuples


def brute_force_triangle_count(rows):
    """Count triangles as unordered triples of distinct edges over three
    distinct vertices where each pair of edges shares a vertex."""
    edges = [(i, row[0], row[1]) for i, row in enumerate(rows) if row[0] != row[1]]
    count = 0
    for (i1, a1, b1), (i2, a2, b2), (i3, a3, b3) in itertools.combinations(edges, 3):
        vertices = {a1, b1, a2, b2, a3, b3}
        if len(vertices) != 3:
            continue
        pairs = [{a1, b1}, {a2, b2}, {a3, b3}]
        if pairs[0] != pairs[1] and pairs[1] != pairs[2] and pairs[0] != pairs[2]:
            count += 1
    return count


class TestExactCounting:
    def test_single_directed_triangle(self):
        graph = graph_from_tuples([("a", "b", "T"), ("b", "c", "T"), ("c", "a", "T")])
        assert total_triangles(graph) == 1

    def test_direction_does_not_matter_structurally(self):
        graph = graph_from_tuples([("a", "b", "T"), ("b", "c", "T"), ("a", "c", "T")])
        assert total_triangles(graph) == 1

    def test_no_triangle_in_a_path(self):
        graph = graph_from_tuples([("a", "b", "T"), ("b", "c", "T")])
        assert total_triangles(graph) == 0

    def test_self_loops_ignored(self):
        graph = graph_from_tuples(
            [("a", "a", "T"), ("a", "b", "T"), ("b", "c", "T"), ("c", "a", "T")]
        )
        assert total_triangles(graph) == 1

    def test_multi_edges_multiply(self):
        graph = graph_from_tuples(
            [
                ("a", "b", "T"),
                ("a", "b", "U"),  # parallel
                ("b", "c", "T"),
                ("c", "a", "T"),
            ]
        )
        assert total_triangles(graph) == 2

    def test_signatures_distinguish_types(self):
        graph = graph_from_tuples(
            [
                ("a", "b", "T"),
                ("b", "c", "T"),
                ("c", "a", "T"),
                ("x", "y", "U"),
                ("y", "z", "U"),
                ("z", "x", "U"),
            ]
        )
        counts = count_triangles(graph)
        assert len(counts) == 2
        assert sum(counts.values()) == 2

    def test_k4_has_four_triangles(self):
        vertices = ["a", "b", "c", "d"]
        rows = [(u, v, "T") for u, v in itertools.combinations(vertices, 2)]
        graph = graph_from_tuples(rows)
        assert total_triangles(graph) == 4

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force_on_random_graphs(self, seed):
        rng = random.Random(seed)
        rows = []
        for _ in range(rng.randint(5, 14)):
            u = f"n{rng.randrange(6)}"
            v = f"n{rng.randrange(6)}"
            rows.append((u, v, rng.choice("TU")))
        graph = graph_from_tuples(rows)
        assert total_triangles(graph) == brute_force_triangle_count(rows)


class TestBirthdayEstimator:
    def test_validates_reservoirs(self):
        with pytest.raises(ValueError):
            BirthdayTriangleEstimator(edge_reservoir=1)

    def test_zero_on_empty(self):
        assert BirthdayTriangleEstimator().estimate_triangles() == 0.0

    def test_triangle_free_stream_estimates_zero(self):
        est = BirthdayTriangleEstimator(seed=1)
        for i in range(2000):  # long path: no triangles
            est.observe(f"n{i}", f"n{i+1}")
        assert est.closed_wedge_fraction() == 0.0
        assert est.estimate_triangles() == 0.0

    def test_dense_triangle_stream_estimates_nonzero(self):
        rng = random.Random(7)
        est = BirthdayTriangleEstimator(seed=2)
        # a clique-ish stream: triangles everywhere
        vertices = [f"v{i}" for i in range(25)]
        for _ in range(3000):
            u, v = rng.sample(vertices, 2)
            est.observe(u, v)
        assert est.closed_wedge_fraction() > 0.05
        assert est.estimate_triangles() > 0.0

    def test_order_of_magnitude_on_clique(self):
        """On a stream that fits in the reservoir, the estimate should be
        within an order of magnitude of the exact count."""
        import itertools as it

        vertices = [f"v{i}" for i in range(16)]
        pairs = list(it.combinations(vertices, 2))
        random.Random(3).shuffle(pairs)
        est = BirthdayTriangleEstimator(
            edge_reservoir=500, wedge_reservoir=4000, seed=4
        )
        for u, v in pairs:
            est.observe(u, v)
        exact = 16 * 15 * 14 / 6  # C(16,3) = 560
        estimate = est.estimate_triangles()
        assert exact / 10 < estimate < exact * 10

    def test_self_loops_skipped(self):
        est = BirthdayTriangleEstimator()
        est.observe("a", "a")
        assert est.edges_seen == 0
