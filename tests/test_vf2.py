"""Unit tests for the VF2 matcher."""

import random

import pytest

from repro.graph import TimeWindow
from repro.isomorphism import count_isomorphisms, find_isomorphisms
from repro.query import QueryGraph

from .util import brute_force_matches, fingerprints, graph_from_tuples


class TestBasics:
    def test_single_edge(self):
        graph = graph_from_tuples([("a", "b", "T"), ("c", "d", "U")])
        query = QueryGraph.path(["T"])
        assert fingerprints(find_isomorphisms(graph, query)) == {((0, 0),)}

    def test_empty_query_has_no_matches(self):
        graph = graph_from_tuples([("a", "b", "T")])
        assert find_isomorphisms(graph, QueryGraph()) == []

    def test_path_query(self):
        graph = graph_from_tuples([("a", "b", "T"), ("b", "c", "U"), ("b", "d", "U")])
        query = QueryGraph.path(["T", "U"])
        assert count_isomorphisms(graph, query) == 2

    def test_vertex_types_respected(self):
        graph = graph_from_tuples(
            [("a", "b", "T", 0.0, "ip", "ip"), ("c", "d", "T", 1.0, "ip", "host")]
        )
        query = QueryGraph.path(["T"], vtype="ip")
        assert fingerprints(find_isomorphisms(graph, query)) == {((0, 0),)}

    def test_binding_restricts_candidates(self):
        graph = graph_from_tuples([("a", "b", "T"), ("c", "b", "T")])
        query = QueryGraph()
        query.add_vertex(0, binding="c")
        query.add_edge(0, 1, "T")
        assert fingerprints(find_isomorphisms(graph, query)) == {((0, 1),)}

    def test_limit(self):
        graph = graph_from_tuples([("a", f"b{i}", "T") for i in range(20)])
        query = QueryGraph.path(["T"])
        assert len(find_isomorphisms(graph, query, limit=5)) == 5


class TestMultigraphSemantics:
    def test_parallel_data_edges_enumerate(self):
        graph = graph_from_tuples([("a", "b", "T"), ("a", "b", "T")])
        query = QueryGraph.path(["T"])
        assert count_isomorphisms(graph, query) == 2

    def test_parallel_query_edges_need_distinct_data_edges(self):
        query = QueryGraph()
        query.add_edge(0, 1, "T")
        query.add_edge(0, 1, "T")
        one = graph_from_tuples([("a", "b", "T")])
        two = graph_from_tuples([("a", "b", "T"), ("a", "b", "T")])
        assert count_isomorphisms(one, query) == 0
        assert count_isomorphisms(two, query) == 2  # both orderings

    def test_triangle(self):
        graph = graph_from_tuples(
            [("a", "b", "T"), ("b", "c", "T"), ("c", "a", "T"), ("a", "c", "T")]
        )
        triangle = QueryGraph.from_triples([(0, "T", 1), (1, "T", 2), (2, "T", 0)])
        got = fingerprints(find_isomorphisms(graph, triangle))
        assert got == brute_force_matches(graph, triangle)

    def test_self_loops(self):
        graph = graph_from_tuples([("a", "a", "T"), ("a", "b", "U")])
        query = QueryGraph()
        query.add_edge(0, 0, "T")
        query.add_edge(0, 1, "U")
        got = fingerprints(find_isomorphisms(graph, query))
        assert got == brute_force_matches(graph, query)
        assert got == {((0, 0), (1, 1))}


class TestWindowFilter:
    def test_span_filter(self):
        graph = graph_from_tuples(
            [("a", "b", "T", 0.0), ("b", "d", "U", 5.0), ("b", "c", "U", 100.0)]
        )
        query = QueryGraph.path(["T", "U"])
        tight = TimeWindow(10.0)
        got = fingerprints(find_isomorphisms(graph, query, window=tight))
        assert got == {((0, 0), (1, 1))}

    def test_strictness(self):
        graph = graph_from_tuples([("a", "b", "T", 0.0), ("b", "c", "U", 10.0)])
        query = QueryGraph.path(["T", "U"])
        assert count_isomorphisms(graph, query, window=TimeWindow(10.0)) == 0
        assert count_isomorphisms(graph, query, window=TimeWindow(10.0001)) == 1


class TestRequireEdge:
    def test_only_matches_containing_edge(self):
        graph = graph_from_tuples(
            [("a", "b", "T"), ("b", "c", "U"), ("x", "y", "T"), ("y", "z", "U")]
        )
        query = QueryGraph.path(["T", "U"])
        got = fingerprints(
            find_isomorphisms(graph, query, require_edge=graph.edge_by_id(3))
        )
        assert got == {((0, 2), (1, 3))}

    def test_each_match_found_once(self):
        # anchor can seed at several query edges of the same type
        graph = graph_from_tuples([("a", "b", "T"), ("b", "c", "T")])
        query = QueryGraph.path(["T", "T"])
        matches = find_isomorphisms(graph, query, require_edge=graph.edge_by_id(0))
        assert len(matches) == len(set(fingerprints(matches))) == 1

    def test_incompatible_anchor(self):
        graph = graph_from_tuples([("a", "b", "T"), ("b", "c", "U")])
        query = QueryGraph.path(["T", "U"])
        wrong_type = graph.edge_by_id(1)
        got = find_isomorphisms(graph, QueryGraph.path(["X"]), require_edge=wrong_type)
        assert got == []


class TestRandomizedAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs(self, seed):
        rng = random.Random(seed)
        rows = []
        for i in range(rng.randint(6, 14)):
            u = f"n{rng.randrange(5)}"
            v = f"n{rng.randrange(5)}"
            if u == v:
                continue
            rows.append((u, v, rng.choice("AB"), float(i)))
        graph = graph_from_tuples(rows)
        shapes = [
            QueryGraph.path([rng.choice("AB") for _ in range(rng.randint(1, 3))]),
            QueryGraph.from_triples([(0, "A", 1), (0, "B", 2)]),
        ]
        for query in shapes:
            assert fingerprints(find_isomorphisms(graph, query)) == (
                brute_force_matches(graph, query)
            )
