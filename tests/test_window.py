"""Unit tests for the TimeWindow policy."""

import math

import pytest

from repro.graph import TimeWindow


class TestTimeWindow:
    def test_default_is_infinite(self):
        window = TimeWindow()
        assert math.isinf(window.width)
        window.advance(1e12)
        assert window.cutoff == -math.inf
        assert window.is_live(-1e12)

    def test_rejects_non_positive_width(self):
        with pytest.raises(ValueError):
            TimeWindow(0.0)
        with pytest.raises(ValueError):
            TimeWindow(-3.0)

    def test_cutoff_follows_newest_edge(self):
        window = TimeWindow(10.0)
        assert window.advance(25.0) == pytest.approx(15.0)
        assert window.cutoff == pytest.approx(15.0)

    def test_clock_never_goes_backwards(self):
        window = TimeWindow(10.0)
        window.advance(50.0)
        window.advance(40.0)  # late event does not rewind
        assert window.t_last == 50.0

    def test_is_live_boundary(self):
        window = TimeWindow(10.0)
        window.advance(20.0)
        assert window.is_live(10.0)  # exactly at cutoff stays live
        assert not window.is_live(9.999)

    def test_fits_is_strict(self):
        window = TimeWindow(10.0)
        assert window.fits(0.0, 9.999)
        assert not window.fits(0.0, 10.0)  # τ < tW, strictly

    def test_infinite_window_fits_everything(self):
        window = TimeWindow()
        assert window.fits(0.0, 1e18)

    def test_copy_is_independent(self):
        window = TimeWindow(5.0)
        window.advance(7.0)
        clone = window.copy()
        assert clone.t_last == 7.0
        clone.advance(100.0)
        assert window.t_last == 7.0
