"""Window-boundary consistency across every layer that applies the cutoff.

The paper's rule is one predicate — an item whose timestamp ``t``
satisfies ``t >= t_last - tW`` is inside the window — but three
independent layers apply it: graph eviction
(:meth:`StreamingGraph.evict_expired`), match-table expiry
(:meth:`MatchTable.expire` plus the probe-time filter), and the snapshot
save rule (entries below the cutoff are dropped at checkpoint time).
These properties pin the boundary case: an edge (or partial match)
timestamped *exactly* at the cutoff is live in all three layers, and one
step past the cutoff is dropped by all three — no layer may disagree, or
a checkpoint/restore (or a shard migration) would diverge from the
uninterrupted run at the boundary.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ContinuousQueryEngine, QueryGraph
from repro.graph.streaming_graph import StreamingGraph
from repro.graph.types import EdgeEvent
from repro.graph.window import TimeWindow
from repro.isomorphism.match import Match
from repro.persistence.snapshot import engine_from_bytes, engine_to_bytes
from repro.sjtree.node import MatchTable

# Integer-valued floats keep ``(t0 + width) - width == t0`` exact, so
# "the cutoff lands exactly on the edge's timestamp" is constructible.
widths = st.integers(min_value=1, max_value=60).map(float)
starts = st.integers(min_value=0, max_value=500).map(float)


@settings(max_examples=40, deadline=None)
@given(width=widths, t0=starts)
def test_timestamp_at_cutoff_is_live_in_every_layer(width, t0):
    boundary = t0 + width  # advancing the clock here puts the cutoff at t0

    window = TimeWindow(width)
    window.advance(t0)
    assert window.advance(boundary) == t0
    assert window.is_live(t0)

    graph = StreamingGraph(window=width)
    edge = graph.add_event(EdgeEvent("a", "b", "T", t0))
    graph.add_event(EdgeEvent("b", "c", "U", boundary))
    assert graph.has_edge_id(edge.edge_id), "eviction dropped a live edge"

    table = MatchTable()
    match = Match((0,), (edge,), t0, t0)
    table.insert(("a",), match)
    assert table.expire(t0) == 0, "expiry dropped a min_time == cutoff entry"
    assert list(table) == [match]


@settings(max_examples=40, deadline=None)
@given(width=widths, t0=starts)
def test_one_step_past_cutoff_expires_in_every_layer(width, t0):
    past = t0 + width + 1.0  # cutoff lands at t0 + 1.0 > t0, exactly

    window = TimeWindow(width)
    window.advance(t0)
    assert window.advance(past) == t0 + 1.0
    assert not window.is_live(t0)

    graph = StreamingGraph(window=width)
    edge = graph.add_event(EdgeEvent("a", "b", "T", t0))
    graph.add_event(EdgeEvent("b", "c", "U", past))
    assert not graph.has_edge_id(edge.edge_id)

    table = MatchTable()
    table.insert(("a",), Match((0,), (edge,), t0, t0))
    assert table.expire(t0 + 1.0) == 1
    assert list(table) == []


@settings(max_examples=40, deadline=None)
@given(
    width=st.floats(min_value=0.5, max_value=100.0, allow_nan=False),
    t_old=st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    gap=st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
)
def test_graph_and_table_agree_with_window_for_arbitrary_floats(width, t_old, gap):
    """For *any* float timestamps the three layers share one verdict."""
    t_new = t_old + gap
    window = TimeWindow(width)
    window.advance(t_old)
    cutoff = window.advance(t_new)
    live = window.is_live(t_old)
    assert live == (t_old >= cutoff)

    graph = StreamingGraph(window=width)
    edge = graph.add_event(EdgeEvent("a", "b", "T", t_old))
    graph.add_event(EdgeEvent("b", "c", "U", t_new))
    assert graph.has_edge_id(edge.edge_id) == live

    table = MatchTable()
    table.insert(("a",), Match((0,), (edge,), t_old, t_old))
    table.expire(cutoff)
    assert (len(table) == 1) == live


@settings(max_examples=25, deadline=None)
@given(width=widths, t0=starts)
def test_snapshot_restore_preserves_boundary_partials(width, t0):
    """Checkpoint + restore at a cutoff-exact cut keeps boundary state.

    The snapshot save rule drops entries with ``min_time < cutoff``; an
    entry *at* the cutoff must survive the round trip, and one step past
    it must be gone — mirroring what eviction and expiry do to the live
    engine, so the restored engine's partial state never diverges.
    """
    boundary = t0 + width
    query = QueryGraph.path(["T", "U"], name="q")
    engine = ContinuousQueryEngine(window=width)
    engine.warmup(
        [
            EdgeEvent("w1", "w2", "T", 0.0),
            EdgeEvent("w2", "w3", "U", 0.0),
        ]
    )
    engine.register(query, strategy="Single", name="q")
    engine.process_event(EdgeEvent("a", "b", "T", t0))
    engine.process_event(EdgeEvent("x", "y", "U", boundary))
    assert engine.graph.window.cutoff == t0

    restored, _ = engine_from_bytes(engine_to_bytes(engine), [query])
    tree = engine.queries["q"].tree
    twin = restored.queries["q"].tree
    for node, twin_node in zip(tree.nodes, twin.nodes):
        kept = sorted(m.min_time for m in node.table if m.min_time >= t0)
        assert sorted(m.min_time for m in twin_node.table) == kept
    # the T-leaf anchor at exactly the cutoff is still present...
    assert restored.partial_match_count() == engine.partial_match_count()
    assert any(
        m.min_time == t0 for node in twin.nodes for m in node.table
    ), "restore lost the min_time == cutoff entry"

    # ...and one step past the cutoff all layers drop it together.
    for target in (engine, restored):
        target.process_event(EdgeEvent("p", "q", "U", boundary + 1.0))
        target.sweep()
    assert not engine.graph.has_edge_id(0)  # the t0 edge left the graph
    again, _ = engine_from_bytes(engine_to_bytes(engine), [query])
    for node, twin_node in zip(
        engine.queries["q"].tree.nodes, again.queries["q"].tree.nodes
    ):
        cutoff = engine.graph.window.cutoff
        kept = sorted(m.min_time for m in node.table if m.min_time >= cutoff)
        assert sorted(m.min_time for m in twin_node.table) == kept
    assert not any(
        m.min_time == t0
        for node in again.queries["q"].tree.nodes
        for m in node.table
    )
    assert restored.partial_match_count() == engine.partial_match_count()
