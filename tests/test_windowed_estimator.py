"""Tests for the window-exact selectivity estimator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import EdgeEvent, StreamingGraph
from repro.stats import (
    SelectivityEstimator,
    WindowedSelectivityEstimator,
    count_two_edge_paths,
    estimator_from_graph,
)


def ev(src, dst, etype, ts):
    return EdgeEvent(src, dst, etype, ts)


class TestWindowedEstimator:
    def test_behaves_like_base_with_infinite_window(self):
        events = [ev("a", "b", "T", 0.0), ev("b", "c", "U", 1.0)]
        windowed = WindowedSelectivityEstimator(window=float("inf"))
        plain = SelectivityEstimator()
        windowed.observe_events(events)
        plain.observe_events(events)
        assert windowed.edge_histogram.as_dict() == plain.edge_histogram.as_dict()
        assert windowed.path_counter.as_counter() == plain.path_counter.as_counter()

    def test_eviction_retracts_statistics(self):
        est = WindowedSelectivityEstimator(window=10.0)
        est.observe_event(ev("a", "b", "TCP", 0.0))
        est.observe_event(ev("b", "c", "UDP", 20.0))
        assert est.edge_selectivity("TCP") == 0.0
        assert est.edge_selectivity("UDP") == 1.0
        assert est.live_edges == 1

    def test_path_statistics_follow_the_window(self):
        est = WindowedSelectivityEstimator(window=5.0)
        est.observe_event(ev("a", "b", "T", 0.0))
        est.observe_event(ev("b", "c", "U", 1.0))
        assert est.path_counter.total == 1
        est.observe_event(ev("x", "y", "T", 100.0))
        assert est.path_counter.total == 0

    def test_boundary_matches_graph_eviction_rule(self):
        est = WindowedSelectivityEstimator(window=10.0)
        est.observe_event(ev("a", "b", "T", 0.0))
        est.observe_event(ev("c", "d", "U", 10.0))  # cutoff 0.0: ts 0.0 lives
        assert est.live_edges == 2

    def test_retract_all(self):
        est = WindowedSelectivityEstimator(window=100.0)
        est.observe_events([ev("a", "b", "T", 0.0), ev("b", "c", "T", 1.0)])
        est.retract_all()
        assert est.live_edges == 0
        assert est.edge_histogram.total == 0
        assert est.path_counter.total == 0

    def test_doctest_example(self):
        import doctest

        import repro.stats.windowed as module

        assert doctest.testmod(module).failed == 0


class TestAgainstLiveGraph:
    @settings(max_examples=40, deadline=None)
    @given(
        width=st.sampled_from([3.0, 8.0, 1e9]),
        raw=st.lists(
            st.tuples(
                st.integers(0, 4),
                st.integers(0, 4),
                st.sampled_from(["A", "B"]),
                st.integers(0, 3),
            ),
            min_size=1,
            max_size=35,
        ),
    )
    def test_windowed_stats_equal_graph_recomputation(self, width, raw):
        """The windowed estimator must equal batch recomputation over the
        live graph after every prefix of any stream."""
        est = WindowedSelectivityEstimator(window=width)
        graph = StreamingGraph(window=width)
        t = 0.0
        for src, dst, etype, dt in raw:
            t += dt
            event = EdgeEvent(f"n{src}", f"n{dst}", etype, t)
            graph.add_event(event)
            est.observe_event(event)
        assert est.live_edges == graph.num_edges
        assert est.edge_histogram.as_dict() == graph.snapshot_counts()
        assert est.path_counter.as_counter() == count_two_edge_paths(graph)
        fresh = estimator_from_graph(graph)
        for etype in ("A", "B"):
            assert est.edge_selectivity(etype) == pytest.approx(
                fresh.edge_selectivity(etype)
            )
