"""Shared test helpers: tiny graph builders and an oracle matcher.

``brute_force_matches`` enumerates *all* injective query-edge → data-edge
assignments directly (O(|E_d|^|E_q|)); it is deliberately independent of
both production matchers (anchored backtracker, VF2) so the three can be
cross-checked on small inputs.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.graph import Edge, EdgeEvent, StreamingGraph, TimeWindow
from repro.query import QueryGraph

Fingerprint = Tuple[Tuple[int, int], ...]


def graph_from_tuples(
    rows: Sequence[tuple],
    window: float = math.inf,
) -> StreamingGraph:
    """Build a graph from ``(src, dst, etype[, timestamp[, stype, dtype]])``."""
    graph = StreamingGraph(window)
    for i, row in enumerate(rows):
        src, dst, etype = row[0], row[1], row[2]
        timestamp = row[3] if len(row) > 3 else float(i)
        src_type = row[4] if len(row) > 4 else "node"
        dst_type = row[5] if len(row) > 5 else "node"
        graph.add_event(EdgeEvent(src, dst, etype, timestamp, src_type, dst_type))
    return graph


def events_from_tuples(rows: Sequence[tuple]) -> List[EdgeEvent]:
    """Events from ``(src, dst, etype[, timestamp[, stype, dtype]])``."""
    events = []
    for i, row in enumerate(rows):
        src, dst, etype = row[0], row[1], row[2]
        timestamp = row[3] if len(row) > 3 else float(i)
        src_type = row[4] if len(row) > 4 else "node"
        dst_type = row[5] if len(row) > 5 else "node"
        events.append(EdgeEvent(src, dst, etype, timestamp, src_type, dst_type))
    return events


def brute_force_matches(
    graph: StreamingGraph,
    query: QueryGraph,
    window: Optional[TimeWindow] = None,
) -> Set[Fingerprint]:
    """All match fingerprints by exhaustive assignment enumeration."""
    data_edges = list(graph.edges())
    query_edges = list(query.edges)
    results: Set[Fingerprint] = set()

    def vertex_ok(qv: int, dv) -> bool:
        return query.vertex_ok(qv, dv, graph.vertex_type(dv))

    def extend(
        index: int,
        assignment: Dict[int, Edge],
        vmap: Dict[int, object],
        used_data: Set[int],
    ) -> None:
        if index == len(query_edges):
            times = [e.timestamp for e in assignment.values()]
            if window is not None and not window.fits(min(times), max(times)):
                return
            results.add(tuple(sorted((q, e.edge_id) for q, e in assignment.items())))
            return
        qedge = query_edges[index]
        for dedge in data_edges:
            if dedge.etype != qedge.etype or dedge.edge_id in used_data:
                continue
            new_bindings: List[tuple] = []
            trial = dict(vmap)
            ok = True
            for qv, dv in ((qedge.src, dedge.src), (qedge.dst, dedge.dst)):
                bound = trial.get(qv)
                if bound is not None:
                    if bound != dv:
                        ok = False
                        break
                    continue
                if not vertex_ok(qv, dv) or dv in trial.values():
                    ok = False
                    break
                trial[qv] = dv
                new_bindings.append((qv, dv))
            if not ok:
                continue
            assignment[qedge.edge_id] = dedge
            for qv, dv in new_bindings:
                vmap[qv] = dv
            used_data.add(dedge.edge_id)
            extend(index + 1, assignment, vmap, used_data)
            used_data.discard(dedge.edge_id)
            for qv, _ in new_bindings:
                del vmap[qv]
            del assignment[qedge.edge_id]

    extend(0, {}, {}, set())
    return results


def fingerprints(matches: Iterable) -> Set[Fingerprint]:
    """Fingerprint set from Match objects or MatchRecords."""
    result = set()
    for item in matches:
        match = getattr(item, "match", item)
        result.add(match.fingerprint)
    return result
