#!/usr/bin/env python3
"""One-way ratchet guard for the static-analysis burndown files.

Two files in this repo encode "quality only moves forward" state:

``tools/mypy_strict.txt``
    The list of modules under strict mypy. It may only **grow**:
    removing a module would silently relax type checking.

``tools/sa/baseline.json``
    The grandfathered findings of the invariant lint engine
    (``python -m tools.sa``). It may only **shrink**: adding an entry
    would grandfather a brand-new violation.

This script compares the working-tree versions against the committed
``HEAD`` versions (via ``git show``) and exits non-zero on any
backwards movement. A file absent from HEAD (first commit introducing
it) passes trivially. Stdlib only — safe to run anywhere git is.

Usage::

    python tools/check_ratchets.py [--repo-root DIR]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

STRICT_LIST = "tools/mypy_strict.txt"
SA_BASELINE = "tools/sa/baseline.json"


def _git_show(repo_root: Path, rel_path: str) -> str | None:
    """Content of ``rel_path`` at HEAD, or None if absent there."""
    proc = subprocess.run(
        ["git", "show", f"HEAD:{rel_path}"],
        cwd=repo_root,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    return proc.stdout


def _strict_modules(text: str) -> set[str]:
    modules = set()
    for line in text.splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            modules.add(line)
    return modules


def _baseline_size(text: str) -> int:
    data = json.loads(text)
    findings = data.get("findings", []) if isinstance(data, dict) else []
    return len(findings)


def check_strict_list(repo_root: Path) -> list[str]:
    current_path = repo_root / STRICT_LIST
    if not current_path.exists():
        return [f"{STRICT_LIST}: missing from working tree"]
    head = _git_show(repo_root, STRICT_LIST)
    if head is None:
        return []
    removed = _strict_modules(head) - _strict_modules(current_path.read_text())
    return [
        f"{STRICT_LIST}: module removed from the strict list: {module}"
        for module in sorted(removed)
    ]


def check_sa_baseline(repo_root: Path) -> list[str]:
    current_path = repo_root / SA_BASELINE
    if not current_path.exists():
        return [f"{SA_BASELINE}: missing from working tree"]
    try:
        current = _baseline_size(current_path.read_text())
    except (json.JSONDecodeError, TypeError) as exc:
        return [f"{SA_BASELINE}: unreadable: {exc}"]
    head_text = _git_show(repo_root, SA_BASELINE)
    if head_text is None:
        return []
    head = _baseline_size(head_text)
    if current > head:
        return [
            f"{SA_BASELINE}: baseline grew from {head} to {current} "
            "finding(s); fix the new findings instead of baselining them"
        ]
    return []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repo-root",
        type=Path,
        default=Path(__file__).resolve().parents[1],
        help="repository root (default: parent of tools/)",
    )
    args = parser.parse_args(argv)
    problems = check_strict_list(args.repo_root) + check_sa_baseline(
        args.repo_root
    )
    for problem in problems:
        print(f"ratchet violation: {problem}", file=sys.stderr)
    if not problems:
        print("ratchets ok: strict list did not shrink, baseline did not grow")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
