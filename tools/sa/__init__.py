"""Repo-local invariant lint engine (``python -m tools.sa``).

See :mod:`tools.sa.core` for the engine concepts and
:mod:`tools.sa.config` for the repo-specific knobs. The checkers live in
:mod:`tools.sa.checkers`.
"""

from __future__ import annotations

from .config import DEFAULT_CONFIG, Config
from .core import (
    Checker,
    FileChecker,
    Finding,
    Project,
    SAError,
    SourceFile,
    load_baseline,
    load_project,
    run_checkers,
    save_baseline,
    split_baselined,
)

__all__ = [
    "Checker",
    "Config",
    "DEFAULT_CONFIG",
    "FileChecker",
    "Finding",
    "Project",
    "SAError",
    "SourceFile",
    "load_baseline",
    "load_project",
    "run_checkers",
    "save_baseline",
    "split_baselined",
]
