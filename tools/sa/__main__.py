"""Command-line front end: ``python -m tools.sa [paths...]``.

Exit status: 0 — clean (or all findings baselined); 1 — new findings;
2 — usage/engine error (unknown rule, unparseable file, bad baseline).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .checkers import all_checkers
from .config import DEFAULT_CONFIG
from .core import (
    SAError,
    load_baseline,
    load_project,
    run_checkers,
    save_baseline,
    split_baselined,
)

_DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.sa",
        description="Run the repo-specific invariant checkers.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tools", "benchmarks"],
        help="files or directories to scan (default: src tools benchmarks)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=_DEFAULT_BASELINE,
        help=f"baseline file (default: {_DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline; every finding fails the run",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to the current findings and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the known rule ids and exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the summary line (findings still print)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    checkers = all_checkers()
    if args.list_rules:
        for checker in checkers:
            for rule in checker.rules:
                print(f"{rule}  ({checker.name})")
        return 0
    select: Optional[List[str]] = None
    if args.select:
        select = [
            rule.strip()
            for chunk in args.select
            for rule in chunk.split(",")
            if rule.strip()
        ]
    try:
        project = load_project(
            [Path(p) for p in args.paths], DEFAULT_CONFIG, root=Path.cwd()
        )
        findings = run_checkers(project, checkers, select=select)
        if args.update_baseline:
            save_baseline(args.baseline, findings)
            if not args.quiet:
                print(
                    f"baseline updated: {len(findings)} finding(s) -> "
                    f"{args.baseline}"
                )
            return 0
        baseline = [] if args.no_baseline else load_baseline(args.baseline)
        new, baselined = split_baselined(findings, baseline)
    except SAError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for finding in new:
        print(finding.render())
    for finding in baselined:
        print(f"{finding.render()} (baselined)")
    if not args.quiet:
        print(
            f"{len(project.files)} file(s) scanned: {len(new)} new, "
            f"{len(baselined)} baselined finding(s)"
        )
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
