"""Checker registry: every invariant checker the engine knows about."""

from __future__ import annotations

from typing import List

from ..core import Checker
from .codec_tags import CodecTagsChecker
from .determinism import DeterminismChecker
from .env_knobs import EnvKnobsChecker
from .hotpath import HotPathChecker
from .metrics_schema import MetricsSchemaChecker
from .typed_errors import TypedErrorsChecker
from .wire_protocol import WireProtocolChecker


def all_checkers() -> List[Checker]:
    return [
        DeterminismChecker(),
        TypedErrorsChecker(),
        HotPathChecker(),
        CodecTagsChecker(),
        WireProtocolChecker(),
        MetricsSchemaChecker(),
        EnvKnobsChecker(),
    ]


__all__ = ["all_checkers"]
