"""Shared AST helpers for the checkers."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple


def const_str(node: ast.AST) -> Optional[str]:
    """The value of a string-constant node, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """Terminal name of the called object: ``f(...)`` / ``a.b.f(...)`` -> f."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def dotted_chain(node: ast.AST) -> Optional[Tuple[str, int]]:
    """Render ``a.b.c`` to ("a.b.c", depth) when rooted at a plain Name.

    Depth counts the dots. Returns None for chains rooted at calls,
    subscripts or other computed values.
    """
    parts = []
    depth = 0
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        depth += 1
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts)), depth


def functions(tree: ast.AST) -> Iterator[ast.AST]:
    """Every function/async-function definition in the tree."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def enclosing_name_matches(name: str, pattern: str) -> bool:
    """Match a function name against a config pattern (``*`` = prefix)."""
    if pattern.endswith("*"):
        return name.startswith(pattern[:-1])
    return name == pattern
