"""Rule ``codec-tags`` — snapshot codec coverage is exhaustive.

Two halves:

* every module-level ``_TAG_*`` constant in the binary codec module
  must be referenced from at least one encoder function (name contains
  ``write``/``encode``) *and* one decoder function (name contains
  ``read``/``decode``) — a tag written but never decoded is a snapshot
  that cannot be restored; a tag decoded but never written is dead
  protocol;
* every snapshot section writer (``_dump_X``) must have a reader twin
  (``_read_X`` / ``_load_X`` / ``_restore_X``, or an explicitly
  configured irregular pair) — an unpaired writer means restore skips a
  section and the byte stream desynchronizes.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from ..config import Config
from ..core import Checker, Finding, Project, SourceFile

_ENCODER_MARKERS = ("write", "encode", "dump")
_DECODER_MARKERS = ("read", "decode", "load")


def _tag_constants(tree: ast.Module) -> List[Tuple[str, int]]:
    tags = []
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id.startswith(
                    "_TAG_"
                ):
                    tags.append((target.id, node.lineno))
    return tags


def _uses_by_function(tree: ast.Module) -> Dict[str, Set[str]]:
    """Tag names referenced inside each (possibly nested) function."""
    uses: Dict[str, Set[str]] = {}

    def visit(node: ast.AST, owner: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit(child, child.name)
            else:
                if isinstance(child, ast.Name) and child.id.startswith(
                    "_TAG_"
                ):
                    uses.setdefault(owner, set()).add(child.id)
                visit(child, owner)

    visit(tree, "<module>")
    return uses


class CodecTagsChecker(Checker):
    name = "codec-tags"
    rules = ("codec-tags",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        config = project.config
        for src in project.match(config.codec_module):
            yield from self._check_tags(src)
        for src in project.match(config.snapshot_module):
            yield from self._check_sections(src, config)

    # ------------------------------------------------------------------

    def _check_tags(self, src: SourceFile) -> Iterable[Finding]:
        tags = _tag_constants(src.tree)
        uses = _uses_by_function(src.tree)
        encoders: Set[str] = set()
        decoders: Set[str] = set()
        for owner, owned in uses.items():
            lowered = owner.lower()
            if any(marker in lowered for marker in _ENCODER_MARKERS):
                encoders |= owned
            if any(marker in lowered for marker in _DECODER_MARKERS):
                decoders |= owned
        for tag, line in tags:
            if tag not in encoders:
                yield Finding(
                    rule="codec-tags",
                    path=src.rel,
                    line=line,
                    message=(
                        f"{tag} has no encoder use (no write*/encode* "
                        "function references it); the codec cannot "
                        "produce this tag"
                    ),
                )
            if tag not in decoders:
                yield Finding(
                    rule="codec-tags",
                    path=src.rel,
                    line=line,
                    message=(
                        f"{tag} has no decoder branch (no read*/decode* "
                        "function references it); snapshots carrying it "
                        "cannot be restored"
                    ),
                )

    # ------------------------------------------------------------------

    def _check_sections(
        self, src: SourceFile, config: Config
    ) -> Iterable[Finding]:
        defined = {
            node.name: node.lineno
            for node in src.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        prefix = config.section_writer_prefix
        for name, line in sorted(defined.items()):
            if not name.startswith(prefix):
                continue
            base = name[len(prefix) :]
            explicit = config.section_pairs.get(name)
            candidates = (
                [explicit]
                if explicit is not None
                else [p + base for p in config.section_reader_prefixes]
            )
            if not any(candidate in defined for candidate in candidates):
                yield Finding(
                    rule="codec-tags",
                    path=src.rel,
                    line=line,
                    message=(
                        f"section writer {name}() has no reader twin "
                        f"(looked for {', '.join(candidates)}); restore "
                        "would desynchronize on this section"
                    ),
                )
