"""Rule ``determinism`` — no order-sensitive iteration over sets.

Set iteration order depends on the interpreter hash seed, so any code
whose *emission order* can be influenced by walking a set diverges
across processes (PR 5's ``LazySearch`` backfill iterated
``Match.data_vertices()`` — a set — and kill/resume runs stopped being
record-identical; 687 in-process tests never saw it because forked
workers share the parent's seed).

Inside the emission-order-sensitive packages (``isomorphism/``,
``sjtree/``, ``search/``) this checker flags every construct that
consumes a set *in order*:

* ``for x in s`` / comprehension ``for x in s`` where ``s`` is a set
  display, set/frozenset call, a call to a known set-returning method
  (``Match.data_vertices`` et al.), a set operator expression, or a
  local name bound only to such expressions;
* ordering-sensitive conversions: ``list(s)``, ``tuple(s)``,
  ``iter(s)``, ``enumerate(s)``, ``reversed(s)``, ``"".join(s)``,
  ``*s`` argument splats;
* ``s.pop()`` — removes an arbitrary (hash-seed-dependent) element.

Order-insensitive consumption (``len``/``min``/``max``/``sum``/``any``
/``all``/``sorted``, membership tests, set algebra) is fine, and
``sorted(s)`` is the canonical fix. False positives are silenced with
``# sa: ignore[determinism]`` after a human has argued why the walk
order cannot reach emission order.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from ..config import Config
from ..core import FileChecker, Finding, SourceFile
from ._util import call_name

_SET_CONSTRUCTORS = {"set", "frozenset"}
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "iter", "enumerate", "reversed"}
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
#: consuming a set (or a comprehension over one) through these is
#: order-insensitive — ``sorted(s)`` is the canonical fix itself.
_SAFE_CONSUMERS = {
    "sorted", "min", "max", "sum", "any", "all", "len", "set", "frozenset"
}
_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _scope_walk(body: List[ast.stmt]) -> Iterable[ast.AST]:
    """Walk ``body`` without descending into nested function scopes."""
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, _FUNC_NODES):
            stack.extend(ast.iter_child_nodes(node))


class _Scope:
    """Setness of local names within one function (or the module body)."""

    def __init__(self, checker: "DeterminismChecker", config: Config) -> None:
        self.checker = checker
        self.config = config
        self.set_names: Set[str] = set()
        self.rebound_names: Set[str] = set()

    def collect(self, body: List[ast.stmt]) -> None:
        for node in _scope_walk(body):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._bind(target, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._bind(node.target, node.value)
        # A name both set-bound and non-set-bound is ambiguous: stay
        # conservative (no finding) rather than flag a maybe.
        self.set_names -= self.rebound_names

    def _bind(self, target: ast.expr, value: ast.expr) -> None:
        if not isinstance(target, ast.Name):
            return
        if self._is_set_expr(value):
            self.set_names.add(target.id)
        else:
            self.rebound_names.add(target.id)

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = call_name(node)
            if isinstance(node.func, ast.Name) and name in _SET_CONSTRUCTORS:
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and name in self.config.set_returning_methods
            ):
                return True
            return False
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        if isinstance(node, ast.IfExp):
            return self._is_set_expr(node.body) or self._is_set_expr(node.orelse)
        return False


class DeterminismChecker(FileChecker):
    name = "determinism"
    rules = ("determinism",)

    def file_applies(self, rel: str, config: Config) -> bool:
        return any(fragment in rel for fragment in config.order_sensitive_dirs)

    def check_file(self, src: SourceFile, config: Config) -> Iterable[Finding]:
        findings: List[Finding] = []
        scopes = [(src.tree.body, None)]
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append((node.body, node))
        for body, _owner in scopes:
            scope = _Scope(self, config)
            scope.collect(body)
            findings.extend(self._check_scope(src, body, scope))
        return findings

    def _check_scope(
        self, src: SourceFile, body: List[ast.stmt], scope: _Scope
    ) -> Iterable[Finding]:
        # Arguments of order-insensitive consumers are safe: the set's
        # walk order cannot reach emission order through sorted()/len()/…
        safe_ids: Set[int] = set()
        for node in _scope_walk(body):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _SAFE_CONSUMERS
            ):
                safe_ids.update(id(arg) for arg in node.args)
        for node in _scope_walk(body):
            yield from self._check_node(src, node, scope, safe_ids)

    def _flag(self, src: SourceFile, node: ast.AST, what: str) -> Finding:
        return Finding(
            rule="determinism",
            path=src.rel,
            line=getattr(node, "lineno", 1),
            message=(
                f"{what} iterates a set in an emission-order-sensitive "
                "module; iteration order is hash-seed dependent and "
                "diverges across processes — wrap in sorted() (or use "
                "a deterministic accessor like data_vertices_ordered)"
            ),
        )

    def _check_node(
        self, src: SourceFile, node: ast.AST, scope: _Scope, safe_ids: Set[int]
    ) -> Iterable[Finding]:
        is_set = scope._is_set_expr
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if is_set(node.iter):
                yield self._flag(src, node.iter, "for-loop")
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            if isinstance(node, ast.SetComp) or id(node) in safe_ids:
                return  # result (or consumer) is order-insensitive
            for gen in node.generators:
                if is_set(gen.iter):
                    yield self._flag(src, gen.iter, "comprehension")
        elif isinstance(node, ast.Call):
            name = call_name(node)
            if (
                isinstance(node.func, ast.Name)
                and name in _ORDER_SENSITIVE_CALLS
                and node.args
                and is_set(node.args[0])
                and id(node) not in safe_ids
            ):
                yield self._flag(src, node, f"{name}() conversion")
            elif (
                isinstance(node.func, ast.Attribute)
                and name == "join"
                and node.args
                and is_set(node.args[0])
            ):
                yield self._flag(src, node, "str.join()")
            elif (
                isinstance(node.func, ast.Attribute)
                and name == "pop"
                and not node.args
                and is_set(node.func.value)
            ):
                yield self._flag(src, node, "set.pop()")
            for arg in node.args:
                if isinstance(arg, ast.Starred) and is_set(arg.value):
                    yield self._flag(src, arg, "argument splat")
        elif isinstance(node, ast.YieldFrom) and is_set(node.value):
            yield self._flag(src, node, "yield from")
