"""Rule ``env-knobs`` — every ``REPRO_*`` env var is declared centrally.

Environment knobs accrete one ad-hoc ``os.environ.get`` at a time and
silently fork (two spellings of the same switch, a knob documented
nowhere). This rule requires every accessed ``REPRO_*`` key to be
declared in the registry module (``repro/envknobs.py`` →
``KNOWN_KNOBS``), and every declared knob to be accessed somewhere in
the scanned tree — so the registry is the complete, live catalog.

Recognized access forms: ``os.environ.get(K)`` / ``os.environ[K]`` /
``os.getenv(K)`` / ``environ.get(K)``, where ``K`` is a string literal
or a module-level string constant in the same file.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple

from ..config import Config
from ..core import Checker, Finding, Project, SourceFile
from ._util import const_str


def _module_str_constants(tree: ast.Module) -> Dict[str, str]:
    out: Dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            value = const_str(node.value)
            if isinstance(target, ast.Name) and value is not None:
                out[target.id] = value
    return out


def _is_environ(node: ast.expr) -> bool:
    """``os.environ`` or a bare ``environ`` name."""
    if isinstance(node, ast.Attribute) and node.attr == "environ":
        return isinstance(node.value, ast.Name) and node.value.id == "os"
    return isinstance(node, ast.Name) and node.id == "environ"


def _env_accesses(
    src: SourceFile,
) -> Iterable[Tuple[str, int]]:
    """(key, line) for every env access with a resolvable key."""
    constants = _module_str_constants(src.tree)

    def resolve(node: ast.expr) -> Optional[str]:
        direct = const_str(node)
        if direct is not None:
            return direct
        if isinstance(node, ast.Name):
            return constants.get(node.id)
        return None

    for node in ast.walk(src.tree):
        key_node: Optional[ast.expr] = None
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "get"
                and _is_environ(func.value)
                and node.args
            ):
                key_node = node.args[0]
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "getenv"
                and isinstance(func.value, ast.Name)
                and func.value.id == "os"
                and node.args
            ):
                key_node = node.args[0]
        elif isinstance(node, ast.Subscript) and _is_environ(node.value):
            key_node = node.slice
        if key_node is None:
            continue
        key = resolve(key_node)
        if key is not None:
            yield key, node.lineno


class EnvKnobsChecker(Checker):
    name = "env-knobs"
    rules = ("env-knobs",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        config = project.config
        registry_files = project.match(config.env_registry_module)
        declared: Dict[str, int] = {}
        registry: Optional[SourceFile] = None
        if registry_files:
            registry = registry_files[0]
            for node in registry.tree.body:
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target: Optional[ast.expr] = node.targets[0]
                elif isinstance(node, ast.AnnAssign):
                    target = node.target
                else:
                    continue
                if not (
                    isinstance(target, ast.Name)
                    and target.id == config.env_registry_name
                    and isinstance(node.value, ast.Dict)
                ):
                    continue
                for key in node.value.keys:
                    name = const_str(key) if key is not None else None
                    if name is not None:
                        declared[name] = key.lineno

        used: Dict[str, List[Tuple[str, int]]] = {}
        findings: List[Finding] = []
        for rel in sorted(project.files):
            src = project.files[rel]
            if src is registry:
                continue
            for key, line in _env_accesses(src):
                if not key.startswith(config.env_prefix):
                    continue
                used.setdefault(key, []).append((rel, line))
                if key not in declared:
                    findings.append(
                        Finding(
                            rule="env-knobs",
                            path=rel,
                            line=line,
                            message=(
                                f"env knob {key!r} is read here but not "
                                f"declared in {config.env_registry_module}"
                                f"::{config.env_registry_name}"
                            ),
                        )
                    )
        if registry is None:
            if used:
                rel, line = next(iter(sorted(used.values())[0]))
                findings.append(
                    Finding(
                        rule="env-knobs",
                        path=rel,
                        line=line,
                        message=(
                            f"REPRO_* env knobs are read but no registry "
                            f"module ({config.env_registry_module}) is in "
                            "the scanned tree"
                        ),
                    )
                )
        else:
            for key, line in sorted(declared.items()):
                if key not in used:
                    findings.append(
                        Finding(
                            rule="env-knobs",
                            path=registry.rel,
                            line=line,
                            message=(
                                f"declared env knob {key!r} is never read "
                                "by any scanned module (stale registry "
                                "entry?)"
                            ),
                        )
                    )
        return findings
