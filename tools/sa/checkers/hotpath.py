"""Hot-path hygiene rules over the configured hot functions.

The per-edge kernels (`_process_chunk`, the compiled-plan executors,
``insert_match``, the match-table methods) are the measured bottlenecks;
PRs 3/6 bought their speedups by hoisting attribute lookups, compiling
closures once, and keeping ``try`` out of inner loops.  These rules stop
the patterns from creeping back:

* ``hot-closure`` — a ``lambda``/``def`` created inside a loop of a hot
  function allocates a fresh function object per iteration; build it
  once outside (or at compile time).
* ``hot-try`` — ``try``/``except`` inside a hot inner loop pays setup
  per iteration on CPython < 3.11 and obscures the fast path; hoist the
  try around the loop.
* ``hot-strkey`` — string-keyed graph API calls (``out_edges`` /
  ``in_edges`` / ``vertex_type`` / ``edges_of_type``) re-intern the
  label per call; hot functions must use the ``*_code`` twins on
  interned int codes.
* ``hot-attr`` — the same ``a.b.c`` attribute chain read repeatedly
  inside one loop should be hoisted to a local before the loop.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List

from ..config import Config
from ..core import FileChecker, Finding, SourceFile
from ._util import dotted_chain, enclosing_name_matches

_LOOPS = (ast.For, ast.AsyncFor, ast.While)
_FUNCS = (ast.FunctionDef, ast.AsyncFunctionDef)


class HotPathChecker(FileChecker):
    name = "hot-path"
    rules = ("hot-closure", "hot-try", "hot-strkey", "hot-attr")

    def file_applies(self, rel: str, config: Config) -> bool:
        return any(rel.endswith(path) for path, _ in config.hot_functions)

    def _hot_patterns(self, rel: str, config: Config) -> List[str]:
        return [
            pattern
            for path, pattern in config.hot_functions
            if rel.endswith(path)
        ]

    def check_file(self, src: SourceFile, config: Config) -> Iterable[Finding]:
        patterns = self._hot_patterns(src.rel, config)
        for node in ast.walk(src.tree):
            if isinstance(node, _FUNCS) and any(
                enclosing_name_matches(node.name, p) for p in patterns
            ):
                yield from self._check_hot_function(src, node, config)

    # ------------------------------------------------------------------

    def _check_hot_function(
        self, src: SourceFile, fn: ast.AST, config: Config
    ) -> Iterable[Finding]:
        hot = fn.name
        # strkey: anywhere in the hot function, loop or not.
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                twin = config.string_keyed_graph_calls.get(node.func.attr)
                if twin is not None:
                    yield Finding(
                        rule="hot-strkey",
                        path=src.rel,
                        line=node.lineno,
                        message=(
                            f"hot function {hot}() calls string-keyed "
                            f".{node.func.attr}(); use .{twin}() with the "
                            "interned code"
                        ),
                    )
        yield from self._walk_for_loops(src, fn, fn.body, config, hot)

    def _walk_for_loops(
        self,
        src: SourceFile,
        fn: ast.AST,
        body: List[ast.stmt],
        config: Config,
        hot: str,
    ) -> Iterable[Finding]:
        """Find loops at this nesting level; recurse into their bodies."""
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, _FUNCS):
                    continue
                if isinstance(node, _LOOPS):
                    yield from self._check_loop(src, node, config, hot)

    def _loop_level_nodes(self, loop: ast.AST) -> Iterable[ast.AST]:
        """Nodes inside ``loop`` but outside any nested loop/function."""
        stack = list(loop.body) + getattr(loop, "orelse", [])
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, _LOOPS + _FUNCS):
                continue  # nested loops are checked on their own
            stack.extend(ast.iter_child_nodes(node))

    def _loop_targets(self, loop: ast.AST) -> set:
        """Names bound by the loop itself (chains rooted there are
        per-iteration values — not hoistable)."""
        names = set()
        target = getattr(loop, "target", None)
        if target is not None:
            for node in ast.walk(target):
                if isinstance(node, ast.Name):
                    names.add(node.id)
        return names

    def _check_loop(
        self, src: SourceFile, loop: ast.AST, config: Config, hot: str
    ) -> Iterable[Finding]:
        loop_targets = self._loop_targets(loop)
        chains: Dict[str, List[int]] = {}
        loop_nodes = list(self._loop_level_nodes(loop))
        # Count only maximal chains: for ``self.a.b`` the inner
        # ``self.a`` node is part of the same read, not a second one.
        inner = {
            id(node.value)
            for node in loop_nodes
            if isinstance(node, ast.Attribute)
        }
        for node in loop_nodes:
            if isinstance(node, ast.Attribute) and id(node) in inner:
                continue
            if isinstance(node, (ast.Lambda,) + _FUNCS):
                kind = (
                    "lambda" if isinstance(node, ast.Lambda) else "nested def"
                )
                yield Finding(
                    rule="hot-closure",
                    path=src.rel,
                    line=node.lineno,
                    message=(
                        f"{kind} created per iteration inside a loop of "
                        f"hot function {hot}(); build the closure once "
                        "outside the loop"
                    ),
                )
            elif isinstance(node, ast.Try):
                yield Finding(
                    rule="hot-try",
                    path=src.rel,
                    line=node.lineno,
                    message=(
                        f"try/except inside a loop of hot function "
                        f"{hot}(); hoist the try around the loop"
                    ),
                )
            elif isinstance(node, ast.Attribute) and isinstance(
                node.ctx, ast.Load
            ):
                rendered = dotted_chain(node)
                if rendered is None:
                    continue
                chain, depth = rendered
                if (
                    depth >= config.hoist_min_depth
                    and chain.split(".", 1)[0] not in loop_targets
                ):
                    chains.setdefault(chain, []).append(node.lineno)
        for chain, sites in sorted(chains.items()):
            if len(sites) >= config.hoist_min_uses:
                yield Finding(
                    rule="hot-attr",
                    path=src.rel,
                    line=min(sites),
                    message=(
                        f"attribute chain {chain} read {len(sites)}x "
                        f"inside one loop of hot function {hot}(); hoist "
                        "it to a local before the loop"
                    ),
                )
