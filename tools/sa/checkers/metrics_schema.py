"""Rule ``metrics-schema`` — metric registrations match the schema catalog.

Every ``repro_*`` family registered anywhere in the library (the
``instrument.py`` builders, ingest counters, ...) must appear in the
schema module's ``KNOWN_FAMILIES`` catalog with the *same label set*,
and vice versa; the schema's ``REQUIRED_*`` tuples must name families
that are actually registered.  Without this, a renamed family silently
splits from its validation (the JSONL validator would stop seeing it)
and dashboards fork from reality.

Registrations are recognized as ``<registry>.counter/gauge/histogram(
"repro_...", ...)`` calls, including through the local aliases
``c = reg.counter`` / ``g = reg.gauge`` the builders use.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..config import Config
from ..core import Checker, Finding, Project, SourceFile
from ._util import const_str


def _label_tuple(call: ast.Call) -> Optional[Tuple[str, ...]]:
    """The ``labels=(...)`` kwarg as a tuple of strings; () if absent.

    Returns None when the labels are not a literal (not checkable).
    """
    for kw in call.keywords:
        if kw.arg == "labels":
            if isinstance(kw.value, (ast.Tuple, ast.List)):
                labels = []
                for elt in kw.value.elts:
                    value = const_str(elt)
                    if value is None:
                        return None
                    labels.append(value)
                return tuple(labels)
            return None
    return ()


class _Registration:
    __slots__ = ("name", "labels", "rel", "line")

    def __init__(
        self,
        name: str,
        labels: Optional[Tuple[str, ...]],
        rel: str,
        line: int,
    ) -> None:
        self.name = name
        self.labels = labels
        self.rel = rel
        self.line = line


class MetricsSchemaChecker(Checker):
    name = "metrics-schema"
    rules = ("metrics-schema",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        config = project.config
        schema_files = project.match(config.metrics_schema_module)
        if not schema_files:
            return
        schema = schema_files[0]
        known, required = self._parse_schema(schema)
        registrations = self._collect_registrations(project, config, schema)
        yield from self._cross_check(
            schema, known, required, registrations
        )

    # ------------------------------------------------------------------

    def _parse_schema(
        self, src: SourceFile
    ) -> Tuple[Dict[str, Tuple[Tuple[str, ...], int]], Dict[str, int]]:
        """(KNOWN_FAMILIES name -> (labels, line), required name -> line)."""
        known: Dict[str, Tuple[Tuple[str, ...], int]] = {}
        required: Dict[str, int] = {}
        for node in src.tree.body:
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            else:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "KNOWN_FAMILIES" and isinstance(
                    node.value, ast.Dict
                ):
                    for key, value in zip(node.value.keys, node.value.values):
                        name = const_str(key) if key is not None else None
                        if name is None:
                            continue
                        labels: Tuple[str, ...] = ()
                        if isinstance(value, (ast.Tuple, ast.List)):
                            labels = tuple(
                                const_str(e) or "" for e in value.elts
                            )
                        known[name] = (labels, key.lineno)
                elif target.id.startswith("REQUIRED_") and isinstance(
                    node.value, (ast.Tuple, ast.List)
                ):
                    for elt in node.value.elts:
                        name = const_str(elt)
                        if name is not None:
                            required[name] = elt.lineno
        return known, required

    # ------------------------------------------------------------------

    def _collect_registrations(
        self, project: Project, config: Config, schema: SourceFile
    ) -> List[_Registration]:
        out: List[_Registration] = []
        for rel in sorted(project.files):
            src = project.files[rel]
            if src is schema:
                continue
            aliases = self._register_aliases(src.tree, config)
            for node in ast.walk(src.tree):
                if not isinstance(node, ast.Call) or not node.args:
                    continue
                func = node.func
                is_register = (
                    isinstance(func, ast.Attribute)
                    and func.attr in config.metric_register_methods
                ) or (isinstance(func, ast.Name) and func.id in aliases)
                if not is_register:
                    continue
                name = const_str(node.args[0])
                if name is None or not name.startswith(config.metric_prefix):
                    continue
                out.append(
                    _Registration(name, _label_tuple(node), rel, node.lineno)
                )
        return out

    def _register_aliases(self, tree: ast.Module, config: Config) -> Set[str]:
        """Local names bound to registration methods (``c = reg.counter``)."""
        aliases: Set[str] = set()
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Attribute)
                and node.value.attr in config.metric_register_methods
            ):
                aliases.add(node.targets[0].id)
        return aliases

    # ------------------------------------------------------------------

    def _cross_check(
        self,
        schema: SourceFile,
        known: Dict[str, Tuple[Tuple[str, ...], int]],
        required: Dict[str, int],
        registrations: List[_Registration],
    ) -> Iterable[Finding]:
        registered: Dict[str, _Registration] = {}
        for reg in registrations:
            registered.setdefault(reg.name, reg)
        for reg in registrations:
            entry = known.get(reg.name)
            if entry is None:
                yield Finding(
                    rule="metrics-schema",
                    path=reg.rel,
                    line=reg.line,
                    message=(
                        f"family {reg.name!r} is registered but missing "
                        "from KNOWN_FAMILIES in the telemetry schema"
                    ),
                )
                continue
            labels, _ = entry
            if reg.labels is not None and reg.labels != labels:
                yield Finding(
                    rule="metrics-schema",
                    path=reg.rel,
                    line=reg.line,
                    message=(
                        f"family {reg.name!r} registered with labels "
                        f"{reg.labels!r} but KNOWN_FAMILIES declares "
                        f"{labels!r}"
                    ),
                )
        for name, (labels, line) in sorted(known.items()):
            if name not in registered:
                yield Finding(
                    rule="metrics-schema",
                    path=schema.rel,
                    line=line,
                    message=(
                        f"KNOWN_FAMILIES entry {name!r} is never "
                        "registered by any scanned module"
                    ),
                )
        for name, line in sorted(required.items()):
            if name not in known:
                yield Finding(
                    rule="metrics-schema",
                    path=schema.rel,
                    line=line,
                    message=(
                        f"required family {name!r} is missing from "
                        "KNOWN_FAMILIES"
                    ),
                )
            if name not in registered:
                yield Finding(
                    rule="metrics-schema",
                    path=schema.rel,
                    line=line,
                    message=(
                        f"required family {name!r} is never registered "
                        "by any scanned module"
                    ),
                )
