"""Rule ``typed-errors`` — library raises come from ``repro.errors``.

The library promises embedders one catchable base type
(:class:`repro.errors.ReproError`); a bare ``raise RuntimeError`` /
``raise Exception`` breaks that contract and loses the structured
context the typed hierarchy carries (PR 8 had to hand-hunt these in the
runtime).  Argument-validation builtins (``ValueError``/``TypeError``/
``KeyError``...) stay legal — they signal caller bugs, not library
failures.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..config import Config
from ..core import FileChecker, Finding, SourceFile


class TypedErrorsChecker(FileChecker):
    name = "typed-errors"
    rules = ("typed-errors",)

    def file_applies(self, rel: str, config: Config) -> bool:
        return any(fragment in rel for fragment in config.typed_error_dirs)

    def check_file(self, src: SourceFile, config: Config) -> Iterable[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            if isinstance(exc, ast.Name) and exc.id in config.banned_raises:
                yield Finding(
                    rule="typed-errors",
                    path=src.rel,
                    line=node.lineno,
                    message=(
                        f"raise {exc.id} in library code; raise a typed "
                        "error from the repro.errors hierarchy instead "
                        "(embedders catch ReproError)"
                    ),
                )
