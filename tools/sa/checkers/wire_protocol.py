"""Rule ``wire-protocol`` — coordinator/worker message shapes agree.

The sharded runtime speaks tuples over multiprocessing queues:

* **task messages** (coordinator → worker): ``("<tag>", ...)`` tuples
  enqueued via ``_put``/``put``/``put_nowait`` and dispatched in the
  worker main loop by comparing ``kind == "<tag>"``;
* **reply messages** (worker → coordinator): ``(worker_id, kind,
  payload, incarnation)`` 4-tuples produced by the worker's ``reply``
  helper and consumed by gather/recovery paths.

The protocol is convention-only — nothing at runtime checks that a
produced tag has a consumer or that every unpacking site expects the
4-tuple shape — so this checker enforces statically:

* every produced task tag has a dispatch branch, and vice versa;
* all producers of one task tag agree on tuple arity, and no consumer
  subscript reaches past that arity;
* every ``reply("<tag>", ...)`` tag is requested or matched somewhere;
* every literal put to a result queue, and every tuple-unpacking of a
  reply, uses exactly the configured reply arity.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..config import Config
from ..core import Checker, Finding, Project, SourceFile
from ._util import call_name, const_str


def _receiver_name(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Attribute):
        value = func.value
        if isinstance(value, ast.Name):
            return value.id
        if isinstance(value, ast.Attribute):
            return value.attr
    return None


def _is_result_queue(call: ast.Call) -> bool:
    receiver = _receiver_name(call)
    return receiver is not None and receiver.endswith("result_queue")


class _Site:
    __slots__ = ("src", "line")

    def __init__(self, src: SourceFile, line: int) -> None:
        self.src = src
        self.line = line


class WireProtocolChecker(Checker):
    name = "wire-protocol"
    rules = ("wire-protocol",)

    def check_project(self, project: Project) -> Iterable[Finding]:
        config = project.config
        files = [
            src
            for module in config.protocol_modules
            for src in project.match(module)
        ]
        if not files:
            return
        task_produced: Dict[str, Dict[int, List[_Site]]] = {}
        task_consumed: Dict[str, List[_Site]] = {}
        task_subscripts: Dict[str, int] = {}
        reply_produced: Dict[str, List[_Site]] = {}
        reply_consumed: Set[str] = set()
        findings: List[Finding] = []

        for src in files:
            self._scan_producers(
                src, config, task_produced, reply_produced, findings
            )
            self._scan_reply_consumers(src, config, reply_consumed)
            self._scan_reply_shapes(src, config, findings)
            consumer = self._find_function(
                src.tree, config.task_consumer_function
            )
            if consumer is not None:
                self._scan_task_consumer(
                    src, consumer, config, task_consumed, task_subscripts
                )

        yield from findings
        yield from self._cross_check(
            task_produced,
            task_consumed,
            task_subscripts,
            reply_produced,
            reply_consumed,
        )

    # -- producers ------------------------------------------------------

    def _scan_producers(
        self,
        src: SourceFile,
        config: Config,
        task_produced: Dict[str, Dict[int, List[_Site]]],
        reply_produced: Dict[str, List[_Site]],
        findings: List[Finding],
    ) -> None:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name == config.reply_call and node.args:
                tag = const_str(node.args[0])
                if tag is not None:
                    reply_produced.setdefault(tag, []).append(
                        _Site(src, node.lineno)
                    )
                continue
            if name in config.task_put_calls and not _is_result_queue(node):
                for arg in node.args:
                    if isinstance(arg, ast.Tuple) and arg.elts:
                        tag = const_str(arg.elts[0])
                        if tag is not None:
                            task_produced.setdefault(tag, {}).setdefault(
                                len(arg.elts), []
                            ).append(_Site(src, node.lineno))

    # -- task consumer (worker main loop) -------------------------------

    def _find_function(self, tree: ast.Module, name: str):
        for node in ast.walk(tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == name
            ):
                return node
        return None

    def _scan_task_consumer(
        self,
        src: SourceFile,
        fn: ast.AST,
        config: Config,
        task_consumed: Dict[str, List[_Site]],
        task_subscripts: Dict[str, int],
    ) -> None:
        for node in ast.walk(fn):
            if not isinstance(node, ast.If):
                continue
            tag = self._compared_tag(node.test, config)
            if tag is None:
                continue
            task_consumed.setdefault(tag, []).append(_Site(src, node.lineno))
            max_index = -1
            for sub in node.body:
                for child in ast.walk(sub):
                    if (
                        isinstance(child, ast.Subscript)
                        and isinstance(child.value, ast.Name)
                        and child.value.id == "message"
                        and isinstance(child.slice, ast.Constant)
                        and isinstance(child.slice.value, int)
                    ):
                        max_index = max(max_index, child.slice.value)
            if max_index >= 0:
                task_subscripts[tag] = max(
                    task_subscripts.get(tag, -1), max_index
                )

    def _compared_tag(self, test: ast.expr, config: Config) -> Optional[str]:
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
        ):
            return None
        left, right = test.left, test.comparators[0]
        for var, const in ((left, right), (right, left)):
            if (
                isinstance(var, ast.Name)
                and var.id in config.tag_variable_names
            ):
                return const_str(const)
        return None

    # -- reply consumers -------------------------------------------------

    def _scan_reply_consumers(
        self, src: SourceFile, config: Config, consumed: Set[str]
    ) -> None:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name in config.reply_request_calls:
                    for arg in node.args:
                        tag = const_str(arg)
                        if tag is not None:
                            consumed.add(tag)
                            break
            elif isinstance(node, ast.Compare) and len(node.ops) == 1:
                if isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
                    left, right = node.left, node.comparators[0]
                    for var, const in ((left, right), (right, left)):
                        tag = const_str(const)
                        if tag is None:
                            continue
                        if (
                            isinstance(var, ast.Name)
                            and var.id in config.tag_variable_names
                        ) or (
                            isinstance(var, ast.Subscript)
                            and isinstance(var.slice, ast.Constant)
                            and var.slice.value == 1
                        ):
                            consumed.add(tag)

    # -- reply tuple shapes ----------------------------------------------

    def _scan_reply_shapes(
        self, src: SourceFile, config: Config, findings: List[Finding]
    ) -> None:
        arity = config.reply_arity
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call):
                name = call_name(node)
                if (
                    name in ("put", "put_nowait")
                    and _is_result_queue(node)
                    and node.args
                    and isinstance(node.args[0], ast.Tuple)
                    and len(node.args[0].elts) != arity
                ):
                    findings.append(
                        Finding(
                            rule="wire-protocol",
                            path=src.rel,
                            line=node.lineno,
                            message=(
                                f"result-queue put of a "
                                f"{len(node.args[0].elts)}-tuple; the "
                                f"reply protocol is {arity}-tuples "
                                "(worker_id, kind, payload, incarnation)"
                            ),
                        )
                    )
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not (
                    isinstance(target, ast.Tuple)
                    and all(isinstance(e, ast.Name) for e in target.elts)
                ):
                    continue
                value = node.value
                unpacks_reply = (
                    isinstance(value, ast.Name) and value.id == "reply"
                ) or (
                    isinstance(value, ast.Call)
                    and call_name(value) == "get"
                    and _is_result_queue(value)
                )
                if unpacks_reply and len(target.elts) != arity:
                    findings.append(
                        Finding(
                            rule="wire-protocol",
                            path=src.rel,
                            line=node.lineno,
                            message=(
                                f"reply unpacked into {len(target.elts)} "
                                f"names; the reply protocol is "
                                f"{arity}-tuples"
                            ),
                        )
                    )

    # -- cross checks -----------------------------------------------------

    def _cross_check(
        self,
        task_produced: Dict[str, Dict[int, List[_Site]]],
        task_consumed: Dict[str, List[_Site]],
        task_subscripts: Dict[str, int],
        reply_produced: Dict[str, List[_Site]],
        reply_consumed: Set[str],
    ) -> Iterable[Finding]:
        for tag, arities in sorted(task_produced.items()):
            site = next(iter(next(iter(arities.values()))))
            if tag not in task_consumed:
                yield Finding(
                    rule="wire-protocol",
                    path=site.src.rel,
                    line=site.line,
                    message=(
                        f"task message {tag!r} is produced but the worker "
                        "dispatch loop has no branch for it"
                    ),
                )
            if len(arities) > 1:
                yield Finding(
                    rule="wire-protocol",
                    path=site.src.rel,
                    line=site.line,
                    message=(
                        f"task message {tag!r} is produced with "
                        f"conflicting arities {sorted(arities)}"
                    ),
                )
            max_sub = task_subscripts.get(tag, -1)
            arity = max(arities)
            if max_sub >= arity:
                yield Finding(
                    rule="wire-protocol",
                    path=site.src.rel,
                    line=site.line,
                    message=(
                        f"task message {tag!r} is produced with arity "
                        f"{arity} but the consumer indexes "
                        f"message[{max_sub}]"
                    ),
                )
        for tag, sites in sorted(task_consumed.items()):
            if tag not in task_produced:
                site = sites[0]
                yield Finding(
                    rule="wire-protocol",
                    path=site.src.rel,
                    line=site.line,
                    message=(
                        f"worker dispatch branch for {tag!r} but no "
                        "coordinator site produces that message"
                    ),
                )
        for tag, sites in sorted(reply_produced.items()):
            if tag not in reply_consumed:
                site = sites[0]
                yield Finding(
                    rule="wire-protocol",
                    path=site.src.rel,
                    line=site.line,
                    message=(
                        f"reply {tag!r} is produced but never requested "
                        "or matched by a coordinator-side consumer"
                    ),
                )
