"""Repo-specific configuration for the invariant checkers.

Everything a checker knows about *this* codebase — which modules are
emission-order-sensitive, which functions are hot, where the codec /
wire-protocol / metrics / env-knob registries live — is declared here,
so the checkers themselves stay generic AST machinery and the fixture
tests can point the same checkers at synthetic trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple


@dataclass
class Config:
    # -- determinism ----------------------------------------------------
    #: path fragments of emission-order-sensitive packages: iterating a
    #: set there can leak the interpreter hash seed into emission order.
    order_sensitive_dirs: Tuple[str, ...] = (
        "isomorphism/",
        "sjtree/",
        "search/",
    )
    #: methods known to return sets — calling code cannot see the type,
    #: so the checker must (Match.data_vertices is the PR 5 incident).
    set_returning_methods: FrozenSet[str] = frozenset(
        {
            "data_vertices",
            "query_edge_ids",
            "intersection",
            "union",
            "difference",
            "symmetric_difference",
        }
    )

    # -- typed errors ---------------------------------------------------
    #: packages whose raises must come from the repro.errors hierarchy.
    typed_error_dirs: Tuple[str, ...] = ("src/repro/",)
    #: exception names whose direct raise is always a finding there.
    banned_raises: FrozenSet[str] = frozenset(
        {"RuntimeError", "Exception", "BaseException"}
    )

    # -- hot-path hygiene -----------------------------------------------
    #: (path suffix, function-name prefix) pairs naming the hot functions.
    #: A name ending in ``*`` is a prefix match.
    hot_functions: Tuple[Tuple[str, str], ...] = (
        ("search/engine.py", "_process_chunk*"),
        ("search/engine.py", "process_events"),
        ("search/engine.py", "process_rows"),
        ("isomorphism/plan.py", "execute_plan*"),
        ("isomorphism/plan.py", "_descend"),
        ("isomorphism/plan.py", "_run"),
        ("isomorphism/plan.py", "_emit"),
        ("isomorphism/match.py", "join"),
        ("sjtree/tree.py", "insert_match"),
        ("sjtree/node.py", "insert"),
        ("sjtree/node.py", "probe"),
        ("sjtree/node.py", "expire"),
    )
    #: string-keyed graph API calls that have interned-code twins; hot
    #: functions must use the ``*_code`` variants.
    string_keyed_graph_calls: Dict[str, str] = field(
        default_factory=lambda: {
            "out_edges": "out_edges_code",
            "in_edges": "in_edges_code",
            "vertex_type": "vertex_type_code",
            "edges_of_type": "edges_of_type_code",
        }
    )
    #: attribute chains of this depth (dots) repeated inside one loop of
    #: a hot function should be hoisted to locals.
    hoist_min_depth: int = 2
    hoist_min_uses: int = 2

    # -- codec tags -----------------------------------------------------
    #: module holding the ``_TAG_*`` constants + encoder/decoder.
    codec_module: str = "persistence/binary.py"
    #: module holding the paired snapshot section writers/readers.
    snapshot_module: str = "persistence/snapshot.py"
    #: prefixes of writer function names and of their reader twins.
    section_writer_prefix: str = "_dump_"
    section_reader_prefixes: Tuple[str, ...] = ("_read_", "_load_", "_restore_")
    #: irregularly named writer -> reader pairs.
    section_pairs: Dict[str, str] = field(
        default_factory=lambda: {
            "_dump_query_state": "_restore_query",
            "_dump_tree_state": "_load_tree",
        }
    )

    # -- wire protocol --------------------------------------------------
    #: modules producing/consuming coordinator<->worker messages.
    protocol_modules: Tuple[str, ...] = (
        "runtime/sharded.py",
        "runtime/supervisor.py",
    )
    #: function whose dispatch loop consumes task messages.
    task_consumer_function: str = "_worker_main"
    #: call names that enqueue a task-message tuple (first positional
    #: tuple argument with a constant str tag).
    task_put_calls: FrozenSet[str] = frozenset(
        {"_put", "_raw_put", "put", "put_nowait"}
    )
    #: the reply helper: ``reply(tag, payload)``.
    reply_call: str = "reply"
    #: every reply tuple on the result queue has exactly this arity
    #: (worker_id, kind, payload, incarnation).
    reply_arity: int = 4
    #: call names whose first str argument names an expected reply kind.
    reply_request_calls: FrozenSet[str] = frozenset(
        {"_gather", "gather", "_await", "_await_recovering"}
    )
    #: variable names holding a message tag in consumer comparisons.
    tag_variable_names: FrozenSet[str] = frozenset(
        {"kind", "got_kind", "k", "reply_kind"}
    )

    # -- metrics schema -------------------------------------------------
    #: module that must catalog every family (KNOWN_FAMILIES + REQUIRED_*).
    metrics_schema_module: str = "telemetry/schema.py"
    #: registration method names on a registry object.
    metric_register_methods: FrozenSet[str] = frozenset(
        {"counter", "gauge", "histogram"}
    )
    #: metric families must start with this prefix to be checked.
    metric_prefix: str = "repro_"

    # -- env knobs ------------------------------------------------------
    #: module declaring every REPRO_* environment knob.
    env_registry_module: str = "envknobs.py"
    #: name of the registry mapping in that module.
    env_registry_name: str = "KNOWN_KNOBS"
    #: only keys with this prefix are governed.
    env_prefix: str = "REPRO_"


DEFAULT_CONFIG = Config()
