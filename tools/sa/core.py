"""Core of the repo-local static-analysis engine (``python -m tools.sa``).

The engine is deliberately dependency-free: :mod:`ast` + :mod:`json` and
nothing else, so it runs on any interpreter the test suite runs on and
can be imported by the test suite itself.

Concepts
--------
* :class:`Finding` — one rule violation at a file/line.
* :class:`Checker` — base class. A checker declares the ``rules`` it can
  emit and implements :meth:`Checker.check_project` over the parsed
  project (most subclasses use the per-file convenience base
  :class:`FileChecker` instead).
* :class:`Project` — the parsed file set handed to checkers: path →
  (source, AST), plus the :class:`Config` describing repo-specific
  locations (hot functions, protocol modules, registry module, ...).
* Suppressions — ``# sa: ignore[rule]`` (or ``# sa: ignore[r1, r2]``) on
  the flagged line or the line directly above it silences that rule
  there. Suppression never silences a rule the comment does not name.
* Baseline — a checked-in JSON list of known findings
  (``tools/sa/baseline.json``). Findings matching a baseline entry are
  reported as "baselined" and do not fail the run, so pre-existing debt
  is burned down instead of blocking; CI separately guards that the
  baseline only ever shrinks.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


class SAError(Exception):
    """Engine-level usage error (unknown rule, unreadable baseline)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation."""

    rule: str
    path: str  # repo-relative, forward slashes
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def baseline_key(self) -> Tuple[str, str, str]:
        # Line numbers drift with unrelated edits; baseline entries match
        # on (rule, path, message) so they survive reshuffling above them.
        return (self.rule, self.path, self.message)


@dataclass
class SourceFile:
    """One parsed module."""

    path: Path  # absolute
    rel: str  # relative to the scan root, forward slashes
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()


@dataclass
class Project:
    """The parsed file set a run operates on."""

    root: Path
    files: Dict[str, SourceFile]  # rel path -> file
    config: "Config"

    def match(self, *suffixes: str) -> List[SourceFile]:
        """Files whose relative path ends with any of ``suffixes``."""
        out = []
        for rel in sorted(self.files):
            if any(rel.endswith(s) for s in suffixes):
                out.append(self.files[rel])
        return out


class Checker:
    """Base class for project-level checkers.

    ``name`` identifies the checker; ``rules`` lists every rule id it can
    emit (used for ``--select`` validation and suppression checking).
    """

    name: str = ""
    rules: Tuple[str, ...] = ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        raise NotImplementedError


class FileChecker(Checker):
    """Convenience base: dispatches per file, optionally path-filtered."""

    def file_applies(self, rel: str, config: "Config") -> bool:
        return True

    def check_file(
        self, src: SourceFile, config: "Config"
    ) -> Iterable[Finding]:
        raise NotImplementedError

    def check_project(self, project: Project) -> Iterable[Finding]:
        for rel in sorted(project.files):
            if self.file_applies(rel, project.config):
                yield from self.check_file(project.files[rel], project.config)


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------

_SUPPRESS_RE = re.compile(r"#\s*sa:\s*ignore\[([A-Za-z0-9_,\s-]+)\]")


def suppressed_rules(lines: Sequence[str], line: int) -> frozenset:
    """Rules suppressed at 1-based ``line`` (same line or the line above)."""
    rules: set = set()
    for lineno in (line, line - 1):
        if 1 <= lineno <= len(lines):
            for m in _SUPPRESS_RE.finditer(lines[lineno - 1]):
                rules.update(r.strip() for r in m.group(1).split(","))
    return frozenset(r for r in rules if r)


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------


def load_baseline(path: Path) -> List[dict]:
    """Load the baseline file; missing file means an empty baseline."""
    if not path.exists():
        return []
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SAError(f"unreadable baseline {path}: {exc}") from exc
    entries = data.get("findings") if isinstance(data, dict) else None
    if not isinstance(entries, list):
        raise SAError(
            f"malformed baseline {path}: expected {{'findings': [...]}}"
        )
    for entry in entries:
        if not isinstance(entry, dict) or not {
            "rule",
            "path",
            "message",
        } <= set(entry):
            raise SAError(
                f"malformed baseline entry in {path}: {entry!r} "
                "(need rule/path/message keys)"
            )
    return entries


def save_baseline(path: Path, findings: Sequence[Finding]) -> None:
    entries = [
        {"rule": f.rule, "path": f.path, "line": f.line, "message": f.message}
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    ]
    payload = {"findings": entries}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def split_baselined(
    findings: Sequence[Finding], baseline: Sequence[dict]
) -> Tuple[List[Finding], List[Finding]]:
    """Partition findings into (new, baselined).

    Each baseline entry absorbs at most one finding (multiset match on
    the (rule, path, message) key), so a *new* duplicate of a baselined
    finding still fails the run.
    """
    budget: Dict[Tuple[str, str, str], int] = {}
    for entry in baseline:
        key = (entry["rule"], entry["path"], entry["message"])
        budget[key] = budget.get(key, 0) + 1
    new: List[Finding] = []
    old: List[Finding] = []
    for finding in findings:
        key = finding.baseline_key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            old.append(finding)
        else:
            new.append(finding)
    return new, old


# ---------------------------------------------------------------------------
# project loading / running
# ---------------------------------------------------------------------------

_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".mypy_cache"}


def iter_python_files(paths: Sequence[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS & set(sub.parts):
                    yield sub


def load_project(
    paths: Sequence[Path], config: "Config", root: Optional[Path] = None
) -> Project:
    """Parse every ``.py`` under ``paths`` into a :class:`Project`.

    A syntactically invalid file is itself a finding-worthy event, but
    the interpreter will complain louder than we can — so it raises.
    """
    root = (root or Path.cwd()).resolve()
    files: Dict[str, SourceFile] = {}
    for path in iter_python_files([p.resolve() for p in paths]):
        try:
            rel = path.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        if rel in files:
            continue
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise SAError(f"cannot parse {rel}: {exc}") from exc
        files[rel] = SourceFile(path=path, rel=rel, source=source, tree=tree)
    return Project(root=root, files=files, config=config)


def run_checkers(
    project: Project,
    checkers: Sequence[Checker],
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run checkers, apply suppressions, return sorted findings."""
    known_rules = {rule for checker in checkers for rule in checker.rules}
    if select:
        unknown = sorted(set(select) - known_rules)
        if unknown:
            raise SAError(
                f"unknown rule(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known_rules))}"
            )
        wanted = set(select)
    else:
        wanted = known_rules
    findings: List[Finding] = []
    for checker in checkers:
        if not wanted & set(checker.rules):
            continue
        for finding in checker.check_project(project):
            if finding.rule not in known_rules:
                raise SAError(
                    f"checker {checker.name!r} emitted undeclared rule "
                    f"{finding.rule!r}"
                )
            if finding.rule not in wanted:
                continue
            src = project.files.get(finding.path)
            if src is not None and finding.rule in suppressed_rules(
                src.lines, finding.line
            ):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings
