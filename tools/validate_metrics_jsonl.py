"""Validate a metrics JSONL stream written by ``run --metrics-out``.

Thin CLI over :func:`repro.telemetry.schema.validate_jsonl_file` so the
CI smoke job (and anyone debugging a run) can assert a stream is
well-formed: contiguous ``seq``, non-decreasing ``events_processed``,
monotone counters across snapshots, required families present, and —
optionally — the final snapshot pinned to the run's known edge/match
totals.

Usage::

    PYTHONPATH=src python tools/validate_metrics_jsonl.py metrics.jsonl \
        [--runtime] [--autoscale] [--expect-events N] [--expect-matches N]

Exits 0 and prints a one-line summary on success; exits 1 with the
validation error on failure.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.telemetry import validate_jsonl_file  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="metrics JSONL file to validate")
    parser.add_argument(
        "--runtime",
        action="store_true",
        help="require the repro_runtime_* families (sharded runs)",
    )
    parser.add_argument(
        "--autoscale",
        action="store_true",
        help=(
            "require the repro_runtime_autoscale_* families (autoscale-"
            "armed runs); the workers-gauge-within-[min,max] and "
            "decisions<=evaluations cross-checks apply whenever the "
            "family is present"
        ),
    )
    parser.add_argument(
        "--expect-events",
        type=int,
        default=None,
        help="pin the final snapshot's edges_ingested_total",
    )
    parser.add_argument(
        "--expect-matches",
        type=int,
        default=None,
        help="pin the final snapshot's summed per-query matches_total",
    )
    args = parser.parse_args(argv)
    try:
        envelopes = validate_jsonl_file(
            args.path,
            expect_runtime=args.runtime,
            expect_autoscale=args.autoscale,
            expect_final_events=args.expect_events,
            expect_final_matches=args.expect_matches,
        )
    except (ValueError, OSError) as exc:
        print(f"INVALID {args.path}: {exc}", file=sys.stderr)
        return 1
    final = envelopes[-1]["families"]
    print(
        f"OK {args.path}: {len(envelopes)} snapshots, "
        f"{len(final)} families in final snapshot, "
        f"events_processed={envelopes[-1]['events_processed']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
